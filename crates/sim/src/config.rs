//! System configurations (Table 1 of the paper).

use rebudget_cache::CacheConfig;
use rebudget_power::{DvfsRange, PowerBudget};

/// Bytes in one *cache region* — the market's cache allocation granularity
/// (§4.1.1: "we empirically set the allocation granularity to 128 kB").
pub const CACHE_REGION_BYTES: f64 = 128.0 * 1024.0;

/// The allocation quantum: the budget re-assignment algorithm re-runs
/// every 1 ms (§4.3).
pub const QUANTUM_SECONDS: f64 = 1e-3;

/// A chip-multiprocessor configuration from Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of cores (8 or 64 in the paper).
    pub cores: usize,
    /// Chip power budget (10 W per core).
    pub power: PowerBudget,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// Memory controller channels (2 / 16).
    pub memory_channels: usize,
    /// Per-core DVFS range.
    pub dvfs: DvfsRange,
    /// Cache regions guaranteed free to every core (1 region, §4.1).
    pub free_regions_per_core: usize,
    /// Maximum cache regions any one core can use (UMON stack-distance
    /// limit: 16 regions = 2 MB, §5).
    pub max_regions_per_core: usize,
}

impl SystemConfig {
    /// The paper's 8-core configuration: 80 W, 4 MB 16-way L2, 2 channels.
    pub fn paper_8core() -> Self {
        Self {
            cores: 8,
            power: PowerBudget::paper(8),
            l2: CacheConfig::l2_8core(),
            memory_channels: 2,
            dvfs: DvfsRange::paper(),
            free_regions_per_core: 1,
            max_regions_per_core: 16,
        }
    }

    /// The paper's 64-core configuration: 640 W, 32 MB 32-way L2,
    /// 16 channels.
    pub fn paper_64core() -> Self {
        Self {
            cores: 64,
            power: PowerBudget::paper(64),
            l2: CacheConfig::l2_64core(),
            memory_channels: 16,
            dvfs: DvfsRange::paper(),
            free_regions_per_core: 1,
            max_regions_per_core: 16,
        }
    }

    /// A scaled-down configuration for fast tests: `cores` cores with
    /// 512 kB of L2 per core and 10 W per core.
    pub fn scaled(cores: usize) -> Self {
        Self {
            cores,
            power: PowerBudget::paper(cores),
            l2: CacheConfig {
                size_bytes: (cores as u64) * 512 * 1024,
                ways: 16,
                line_bytes: 32,
            },
            memory_channels: (cores / 4).max(1),
            dvfs: DvfsRange::paper(),
            free_regions_per_core: 1,
            max_regions_per_core: 16,
        }
    }

    /// Total cache regions on the chip.
    pub fn total_regions(&self) -> usize {
        (self.l2.size_bytes as f64 / CACHE_REGION_BYTES) as usize
    }

    /// Discretionary cache regions: total minus one free region per core.
    pub fn discretionary_regions(&self) -> usize {
        self.total_regions() - self.cores * self.free_regions_per_core
    }

    /// Cache bytes available to a core holding `discretionary` extra
    /// regions (its free region included), capped at the per-core maximum.
    pub fn core_cache_bytes(&self, discretionary_regions: f64) -> f64 {
        let regions = self.free_regions_per_core as f64 + discretionary_regions.max(0.0);
        (regions * CACHE_REGION_BYTES).min(self.max_regions_per_core as f64 * CACHE_REGION_BYTES)
    }
}

/// One row of Table 1 (name, 8-core value, 64-core value) — everything the
/// paper lists, reproducible by the `table1_config` binary.
pub fn table1_rows() -> Vec<(&'static str, String, String)> {
    let c8 = SystemConfig::paper_8core();
    let c64 = SystemConfig::paper_64core();
    vec![
        ("Number of Cores", "8".into(), "64".into()),
        (
            "Power Budget",
            format!("{} W", c8.power.total_watts),
            format!("{} W", c64.power.total_watts),
        ),
        (
            "Shared L2 Cache Capacity",
            format!("{} MB", c8.l2.size_bytes >> 20),
            format!("{} MB", c64.l2.size_bytes >> 20),
        ),
        (
            "Shared L2 Cache Associativity",
            format!("{} ways", c8.l2.ways),
            format!("{} ways", c64.l2.ways),
        ),
        (
            "Memory Controller",
            format!("{} channels", c8.memory_channels),
            format!("{} channels", c64.memory_channels),
        ),
        (
            "Frequency",
            "0.8 GHz - 4.0 GHz".into(),
            "0.8 GHz - 4.0 GHz".into(),
        ),
        ("Voltage", "0.8 V - 1.2 V".into(), "0.8 V - 1.2 V".into()),
        (
            "Fetch/Issue/Commit Width",
            "4 / 4 / 4".into(),
            "4 / 4 / 4".into(),
        ),
        (
            "Int/FP/Ld/St/Br Units",
            "2 / 2 / 2 / 2 / 2".into(),
            "2 / 2 / 2 / 2 / 2".into(),
        ),
        ("ROB (Reorder Buffer) Entries", "128".into(), "128".into()),
        ("Int/FP Registers", "160 / 160".into(), "160 / 160".into()),
        ("Ld/St Queue Entries", "32 / 32".into(), "32 / 32".into()),
        (
            "Branch Predictor",
            "Alpha 21264 (tournament)".into(),
            "Alpha 21264 (tournament)".into(),
        ),
        (
            "BTB Size",
            "512 entries, direct-mapped".into(),
            "512 entries, direct-mapped".into(),
        ),
        ("iL1/dL1 Size", "32 kB".into(), "32 kB".into()),
        (
            "iL1/dL1 Block Size",
            "32 B / 32 B".into(),
            "32 B / 32 B".into(),
        ),
        (
            "iL1/dL1 Associativity",
            "direct-mapped / 4-way".into(),
            "direct-mapped / 4-way".into(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_table1() {
        let c8 = SystemConfig::paper_8core();
        assert_eq!(c8.cores, 8);
        assert_eq!(c8.power.total_watts, 80.0);
        assert_eq!(c8.l2.size_bytes, 4 << 20);
        assert_eq!(c8.l2.ways, 16);
        assert_eq!(c8.memory_channels, 2);

        let c64 = SystemConfig::paper_64core();
        assert_eq!(c64.power.total_watts, 640.0);
        assert_eq!(c64.l2.size_bytes, 32 << 20);
        assert_eq!(c64.l2.ways, 32);
        assert_eq!(c64.memory_channels, 16);
    }

    #[test]
    fn region_accounting() {
        let c8 = SystemConfig::paper_8core();
        // 4 MB / 128 kB = 32 regions; 8 free → 24 discretionary.
        assert_eq!(c8.total_regions(), 32);
        assert_eq!(c8.discretionary_regions(), 24);
        let c64 = SystemConfig::paper_64core();
        // 32 MB / 128 kB = 256 regions; 64 free → 192 discretionary.
        assert_eq!(c64.total_regions(), 256);
        assert_eq!(c64.discretionary_regions(), 192);
    }

    #[test]
    fn core_cache_bytes_caps_at_2mb() {
        let c = SystemConfig::paper_64core();
        assert_eq!(c.core_cache_bytes(0.0), 128.0 * 1024.0);
        assert_eq!(c.core_cache_bytes(3.0), 4.0 * 128.0 * 1024.0);
        assert_eq!(c.core_cache_bytes(100.0), 16.0 * 128.0 * 1024.0);
    }

    #[test]
    fn table1_covers_key_rows() {
        let rows = table1_rows();
        assert!(rows.len() >= 15);
        assert!(rows.iter().any(|(n, ..)| *n == "Power Budget"));
        assert!(rows.iter().any(|(n, ..)| *n == "Branch Predictor"));
    }

    #[test]
    fn scaled_config_is_consistent() {
        let c = SystemConfig::scaled(4);
        assert_eq!(c.cores, 4);
        assert_eq!(c.total_regions(), 16);
        assert!(c.l2.validate().is_ok());
    }
}
