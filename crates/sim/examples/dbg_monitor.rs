//! Debug helper: print the monitored MPKI curve for one app.
use rebudget_apps::spec::app_by_name;
use rebudget_sim::monitor::CoreMonitor;
use rebudget_sim::SystemConfig;

fn main() {
    let sys = SystemConfig::paper_8core();
    let name = std::env::args().nth(1).unwrap_or_else(|| "mcf".to_string());
    let app = app_by_name(&name).unwrap();
    let mut m = CoreMonitor::new(app, &sys, 0, 99);
    m.warm_up(300_000);
    m.observe_quantum(300_000);
    let c = m.mpki_curve().unwrap();
    for (cap, miss) in c.capacities().iter().zip(c.misses()) {
        println!(
            "{:>8.0} kB  mpki {:.2}  (analytic {:.2})",
            cap / 1024.0,
            miss,
            app.mpki_at(*cap)
        );
    }
}
