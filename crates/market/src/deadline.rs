//! Deadline-bounded solving and the bounded retry ladder.
//!
//! At production scale a single pathological equilibrium solve must not be
//! able to stall a whole run: every solver entry point accepts a
//! [`DeadlineBudget`] — a wall-clock and/or iteration budget — and returns
//! with [`crate::SolveReport::timed_out`] set instead of spinning when the
//! budget is exhausted.
//!
//! On top of that sits [`solve_with_retry`], a *bounded* retry ladder with
//! exponential back-off on the per-attempt budget:
//!
//! 1. the solve as configured;
//! 2. a **tightened** attempt — finer bidding steps and a tighter λ
//!    tolerance, which resolves most oscillation-induced non-convergence;
//! 3. progressively **relaxed** attempts — the price tolerance is widened
//!    each rung, accepting a rougher equilibrium over none at all.
//!
//! If every rung fails, the best (lowest-residual) iterate seen is
//! returned with a [`RetryReport`] describing the ladder; callers that
//! need a hard guarantee then fall back to `EqualShare` through the
//! degradation path the simulator already has (see
//! `rebudget-sim::simulation`).
//!
//! # Determinism
//!
//! Iteration budgets are exact and deterministic; wall-clock budgets are
//! inherently racy against machine load. Runs that must be bit-identical
//! (checkpoint/resume, the determinism test suites) should bound solves by
//! iterations only — the default [`DeadlineBudget::UNBOUNDED`] never
//! changes results.

use std::time::{Duration, Instant};

use rebudget_telemetry as telemetry;

use crate::equilibrium::{EquilibriumOptions, EquilibriumOutcome};
use crate::sparse::{SparseMarket, SparseOutcome};
use crate::{Market, MarketError, Result};

/// A wall-clock and/or iteration budget for one solve.
///
/// The default is unbounded on both axes, so the budget can be carried in
/// options structs unconditionally without changing behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeadlineBudget {
    /// Wall-clock limit for the solve. `None` = unlimited.
    pub wall_clock: Option<Duration>,
    /// Iteration limit for the solve, *in addition to* any fail-safe the
    /// solver already has (e.g. the paper's 30-iteration cap). `None` =
    /// unlimited.
    pub max_iterations: Option<usize>,
}

impl DeadlineBudget {
    /// No limit on either axis — solver behaviour is unchanged.
    pub const UNBOUNDED: Self = Self {
        wall_clock: None,
        max_iterations: None,
    };

    /// A wall-clock-only budget.
    ///
    /// # Errors
    ///
    /// [`MarketError::InvalidValue`] for `ms == 0`: a zero budget admits
    /// no work at all, so every solve under it would "time out" having
    /// done nothing — always a configuration mistake, never a policy.
    /// (An *unlimited* budget is spelled [`DeadlineBudget::UNBOUNDED`],
    /// not zero.)
    pub fn wall_clock_ms(ms: u64) -> Result<Self> {
        Self::checked(Some(ms), None)
    }

    /// An iteration-only budget (deterministic; use this for reproducible
    /// runs).
    ///
    /// # Errors
    ///
    /// [`MarketError::InvalidValue`] for `n == 0` (see
    /// [`DeadlineBudget::wall_clock_ms`]).
    pub fn iterations(n: usize) -> Result<Self> {
        Self::checked(None, Some(n))
    }

    /// Builds a budget from optional wall-clock and iteration limits,
    /// validating both axes. `None` on an axis means unlimited;
    /// `checked(None, None)` is [`DeadlineBudget::UNBOUNDED`].
    ///
    /// # Errors
    ///
    /// [`MarketError::InvalidValue`] when either limit is zero — a budget
    /// that can never admit an iteration. Callers that used to pass zero
    /// to mean "no limit" must pass `None` instead.
    pub fn checked(wall_clock_ms: Option<u64>, max_iterations: Option<usize>) -> Result<Self> {
        if wall_clock_ms == Some(0) {
            return Err(MarketError::InvalidValue {
                what: "deadline wall-clock budget in ms (zero admits no work; \
                       use an unbounded budget for no limit)",
                value: 0.0,
            });
        }
        if max_iterations == Some(0) {
            return Err(MarketError::InvalidValue {
                what: "deadline iteration budget (zero admits no work; \
                       use an unbounded budget for no limit)",
                value: 0.0,
            });
        }
        Ok(Self {
            wall_clock: wall_clock_ms.map(Duration::from_millis),
            max_iterations,
        })
    }

    /// `true` when either axis is bounded.
    pub fn is_bounded(&self) -> bool {
        self.wall_clock.is_some() || self.max_iterations.is_some()
    }

    /// Returns the budget with both axes scaled by `factor` (exponential
    /// back-off between retry rungs). Unbounded axes stay unbounded.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        let factor = factor.max(0.0);
        Self {
            wall_clock: self.wall_clock.map(|d| d.mul_f64(factor)),
            max_iterations: self
                .max_iterations
                .map(|n| ((n as f64 * factor) as usize).max(1)),
        }
    }

    /// Starts the clock on this budget.
    pub fn start(&self) -> DeadlineClock {
        DeadlineClock {
            budget: *self,
            // Only pay for `Instant::now` when a wall clock is armed.
            started: self.wall_clock.map(|_| Instant::now()),
            charged: 0,
        }
    }
}

/// A running [`DeadlineBudget`]: tracks elapsed wall-clock time and the
/// iterations charged so far.
#[derive(Debug, Clone)]
pub struct DeadlineClock {
    budget: DeadlineBudget,
    started: Option<Instant>,
    charged: usize,
}

impl DeadlineClock {
    /// Charges `iterations` against the budget and reports whether the
    /// budget is now exhausted.
    pub fn charge(&mut self, iterations: usize) -> bool {
        self.charged += iterations;
        self.expired()
    }

    /// Whether the budget is exhausted (on either axis).
    pub fn expired(&self) -> bool {
        if let Some(cap) = self.budget.max_iterations {
            if self.charged >= cap {
                return true;
            }
        }
        if let (Some(limit), Some(started)) = (self.budget.wall_clock, self.started) {
            if started.elapsed() >= limit {
                return true;
            }
        }
        false
    }

    /// Iterations charged so far.
    pub fn iterations(&self) -> usize {
        self.charged
    }

    /// Elapsed wall-clock time, if a wall clock is armed.
    pub fn elapsed(&self) -> Option<Duration> {
        self.started.map(|s| s.elapsed())
    }
}

/// The bounded retry ladder for equilibrium solves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1; 1 = no retries).
    pub max_attempts: usize,
    /// Factor applied to the bidding tolerances on the *tightened* rung
    /// (attempt 2). Must be in `(0, 1]`.
    pub tighten: f64,
    /// Factor applied to the price tolerance on each *relaxed* rung
    /// (attempts ≥ 3), compounding per rung. Must be ≥ 1.
    pub relax: f64,
    /// Exponential back-off on the per-attempt [`DeadlineBudget`]: attempt
    /// `k` (0-based) runs under `deadline.scaled(backoff^k)`.
    pub backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            tighten: 0.5,
            relax: 4.0,
            backoff: 2.0,
        }
    }
}

impl RetryPolicy {
    /// A ladder with `attempts` total attempts and default factors.
    pub fn with_attempts(attempts: usize) -> Self {
        Self {
            max_attempts: attempts.max(1),
            ..Self::default()
        }
    }

    /// The options for 0-based attempt `k` of the ladder: attempt 0 runs
    /// `base` unchanged, attempt 1 tightens the bidding tolerances, and
    /// attempts ≥ 2 relax the price tolerance geometrically; every rung's
    /// deadline is scaled by `backoff^k`. Public so callers that drive
    /// their own solve loop (e.g. the online server's per-tick sparse
    /// solves) reuse the exact ladder semantics of [`solve_with_retry`].
    pub fn options_for_attempt(&self, base: &EquilibriumOptions, k: usize) -> EquilibriumOptions {
        let mut opts = base.clone();
        opts.deadline = base.deadline.scaled(self.backoff.max(1.0).powi(k as i32));
        match k {
            0 => {}
            1 => {
                // Tightened rung: finer hill-climb steps and λ tolerance.
                let t = self.tighten.clamp(1e-3, 1.0);
                opts.bidding.lambda_tolerance *= t;
                opts.bidding.min_step_fraction *= t;
            }
            k => {
                // Relaxed rungs: widen the price tolerance geometrically.
                let r = self.relax.max(1.0).powi(k as i32 - 1);
                opts.price_tolerance = base.price_tolerance * r;
            }
        }
        opts
    }
}

/// How a retry ladder went.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RetryReport {
    /// Attempts executed (1 = first solve succeeded).
    pub attempts: u64,
    /// Attempts that hit their [`DeadlineBudget`].
    pub timed_out_attempts: u64,
    /// Whether the returned outcome converged.
    pub converged: bool,
}

impl RetryReport {
    /// Retries beyond the first attempt.
    pub fn retries(&self) -> u64 {
        self.attempts.saturating_sub(1)
    }
}

/// Solves `market` under `budgets`, retrying along the
/// [`RetryPolicy`] ladder until a solve converges within its deadline.
///
/// Returns the first converged, in-budget outcome; if every rung fails,
/// the lowest-residual outcome seen is returned (best-effort), with the
/// [`RetryReport`] recording how hard the ladder had to work. The caller
/// owns any further fallback (e.g. `EqualShare` via the simulator's
/// degradation path).
///
/// # Errors
///
/// Propagates [`crate::MarketError`]s from degenerate inputs; running out
/// of rungs is *not* an error.
pub fn solve_with_retry(
    market: &Market,
    budgets: &[f64],
    options: &EquilibriumOptions,
    policy: &RetryPolicy,
) -> Result<(EquilibriumOutcome, RetryReport)> {
    let attempts = policy.max_attempts.max(1);
    let mut report = RetryReport::default();
    let mut best: Option<EquilibriumOutcome> = None;
    for k in 0..attempts {
        let opts = policy.options_for_attempt(options, k);
        let out = market.equilibrium_with_budgets(budgets, &opts)?;
        report.attempts = (k + 1) as u64;
        if out.report.timed_out {
            report.timed_out_attempts += 1;
        }
        let done = out.converged() && !out.report.timed_out;
        if telemetry::enabled() {
            telemetry::record(
                telemetry::Event::new("retry_attempt")
                    .field_u64("attempt", report.attempts)
                    .field_bool("converged", out.converged())
                    .field_bool("timed_out", out.report.timed_out)
                    .field_f64("residual", out.report.residual),
            );
            if k > 0 {
                telemetry::global()
                    .registry
                    .counter("solver.retries")
                    .incr();
            }
        }
        let better = match &best {
            None => true,
            Some(b) => out.report.residual < b.report.residual,
        };
        if better {
            best = Some(out);
        }
        if done {
            break;
        }
    }
    #[allow(clippy::expect_used)] // attempts >= 1, so a solve always ran
    let outcome = best.expect("at least one attempt");
    report.converged = outcome.converged();
    Ok((outcome, report))
}

/// The retry ladder of [`solve_with_retry`] for sparse markets: identical
/// rung semantics (same [`RetryPolicy::options_for_attempt`] options per
/// attempt), driving [`SparseMarket::solve`] instead of the dense engine.
///
/// Returns the first converged, in-budget outcome; if every rung fails,
/// the lowest-residual outcome seen is returned best-effort with the
/// [`RetryReport`] describing the ladder. The caller owns any further
/// fallback (the online server degrades to `EqualShare`).
///
/// # Errors
///
/// Propagates [`crate::MarketError`]s from degenerate inputs (including
/// [`MarketError::UnsupportedSolver`] for the Jacobi engine, which cannot
/// run sparse); running out of rungs is *not* an error.
pub fn solve_sparse_with_retry(
    market: &SparseMarket,
    options: &EquilibriumOptions,
    policy: &RetryPolicy,
) -> Result<(SparseOutcome, RetryReport)> {
    let attempts = policy.max_attempts.max(1);
    let mut report = RetryReport::default();
    let mut best: Option<SparseOutcome> = None;
    for k in 0..attempts {
        let opts = policy.options_for_attempt(options, k);
        let out = market.solve(&opts)?;
        report.attempts = (k + 1) as u64;
        if out.report.timed_out {
            report.timed_out_attempts += 1;
        }
        let done = out.converged() && !out.report.timed_out;
        if telemetry::enabled() {
            telemetry::record(
                telemetry::Event::new("retry_attempt")
                    .field_u64("attempt", report.attempts)
                    .field_bool("converged", out.converged())
                    .field_bool("timed_out", out.report.timed_out)
                    .field_f64("residual", out.report.residual),
            );
            if k > 0 {
                telemetry::global()
                    .registry
                    .counter("solver.retries")
                    .incr();
            }
        }
        let better = match &best {
            None => true,
            Some(b) => out.report.residual < b.report.residual,
        };
        if better {
            best = Some(out);
        }
        if done {
            break;
        }
    }
    #[allow(clippy::expect_used)] // attempts >= 1, so a solve always ran
    let outcome = best.expect("at least one attempt");
    report.converged = outcome.converged();
    Ok((outcome, report))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::utility::SeparableUtility;
    use crate::{Player, ResourceSpace};
    use std::sync::Arc;

    fn market() -> Market {
        let caps = [16.0, 80.0];
        Market::new(
            ResourceSpace::new(caps.to_vec()).unwrap(),
            vec![
                Player::new(
                    "a",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&[0.8, 0.2], &caps).unwrap()),
                ),
                Player::new(
                    "b",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&[0.3, 0.7], &caps).unwrap()),
                ),
            ],
        )
        .unwrap()
    }

    fn opts_with(deadline: DeadlineBudget) -> EquilibriumOptions {
        EquilibriumOptions {
            deadline,
            ..EquilibriumOptions::default()
        }
    }

    #[test]
    fn unbounded_budget_never_expires() {
        let mut clock = DeadlineBudget::UNBOUNDED.start();
        assert!(!clock.charge(1_000_000));
        assert!(!clock.expired());
        assert!(clock.elapsed().is_none(), "no wall clock armed");
    }

    #[test]
    fn iteration_budget_is_exact() {
        let mut clock = DeadlineBudget::iterations(3).unwrap().start();
        assert!(!clock.charge(1));
        assert!(!clock.charge(1));
        assert!(clock.charge(1), "third iteration exhausts the budget");
        assert_eq!(clock.iterations(), 3);
    }

    #[test]
    fn zero_budgets_are_rejected_at_construction() {
        // Regression: zero used to build a budget that could never admit
        // an iteration; now both axes validate at construction.
        for result in [
            DeadlineBudget::wall_clock_ms(0),
            DeadlineBudget::iterations(0),
            DeadlineBudget::checked(Some(0), Some(5)),
            DeadlineBudget::checked(Some(5), Some(0)),
        ] {
            match result {
                Err(MarketError::InvalidValue { what, value }) => {
                    assert!(what.contains("deadline"), "what: {what}");
                    assert_eq!(value, 0.0);
                }
                other => panic!("expected InvalidValue, got {other:?}"),
            }
        }
    }

    #[test]
    fn checked_constructors_build_valid_budgets() {
        let b = DeadlineBudget::checked(Some(10), Some(8)).unwrap();
        assert_eq!(b.wall_clock, Some(Duration::from_millis(10)));
        assert_eq!(b.max_iterations, Some(8));
        assert_eq!(
            DeadlineBudget::checked(None, None).unwrap(),
            DeadlineBudget::UNBOUNDED
        );
        assert_eq!(
            DeadlineBudget::wall_clock_ms(7).unwrap().wall_clock,
            Some(Duration::from_millis(7))
        );
        assert_eq!(
            DeadlineBudget::iterations(9).unwrap().max_iterations,
            Some(9)
        );
    }

    #[test]
    fn scaling_backs_off_both_axes() {
        let b = DeadlineBudget {
            wall_clock: Some(Duration::from_millis(10)),
            max_iterations: Some(8),
        };
        let s = b.scaled(2.0);
        assert_eq!(s.wall_clock, Some(Duration::from_millis(20)));
        assert_eq!(s.max_iterations, Some(16));
        let u = DeadlineBudget::UNBOUNDED.scaled(4.0);
        assert!(!u.is_bounded());
    }

    #[test]
    fn timed_out_solve_returns_within_budget() {
        let m = market();
        let opts = opts_with(DeadlineBudget::iterations(1).unwrap());
        let out = m.equilibrium(&opts).unwrap();
        assert!(out.report.timed_out, "one iteration cannot converge here");
        assert!(!out.converged());
        assert_eq!(out.iterations, 1, "stopped exactly at the budget");
        // The best-effort iterate is still a real allocation.
        assert!(out
            .allocation
            .is_exhaustive(m.resources().capacities(), 1e-9));
    }

    #[test]
    fn unbounded_deadline_changes_nothing() {
        let m = market();
        let base = m.equilibrium(&EquilibriumOptions::default()).unwrap();
        let opts = opts_with(DeadlineBudget::UNBOUNDED);
        let same = m.equilibrium(&opts).unwrap();
        assert_eq!(base.iterations, same.iterations);
        for (a, b) in base.prices.iter().zip(&same.prices) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn retry_ladder_recovers_from_starved_first_attempt() {
        let m = market();
        // First attempt gets 1 iteration; back-off doubles it each rung.
        let opts = opts_with(DeadlineBudget::iterations(1).unwrap());
        let policy = RetryPolicy {
            max_attempts: 6,
            backoff: 4.0,
            ..RetryPolicy::default()
        };
        let (out, report) = solve_with_retry(&m, &[100.0, 100.0], &opts, &policy).unwrap();
        assert!(report.attempts > 1, "first rung must time out");
        assert!(report.timed_out_attempts >= 1);
        assert!(report.converged, "a later rung converges: {report:?}");
        assert!(out.converged());
    }

    #[test]
    fn clean_solve_takes_one_attempt() {
        let m = market();
        let opts = EquilibriumOptions::default();
        let (out, report) =
            solve_with_retry(&m, &[100.0, 100.0], &opts, &RetryPolicy::default()).unwrap();
        assert_eq!(report.attempts, 1);
        assert_eq!(report.retries(), 0);
        assert_eq!(report.timed_out_attempts, 0);
        assert!(out.converged());
    }

    #[test]
    fn exhausted_ladder_returns_best_effort() {
        let m = market();
        let opts = opts_with(DeadlineBudget::iterations(1).unwrap());
        // No back-off: every rung is starved.
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff: 1.0,
            ..RetryPolicy::default()
        };
        let (out, report) = solve_with_retry(&m, &[100.0, 100.0], &opts, &policy).unwrap();
        assert_eq!(report.attempts, 3);
        assert_eq!(report.timed_out_attempts, 3);
        assert!(!report.converged);
        assert!(out
            .allocation
            .is_exhaustive(m.resources().capacities(), 1e-9));
    }

    #[test]
    fn ladder_is_deterministic_with_iteration_budgets() {
        let m = market();
        let opts = opts_with(DeadlineBudget::iterations(2).unwrap());
        let policy = RetryPolicy::with_attempts(4);
        let run = || solve_with_retry(&m, &[100.0, 100.0], &opts, &policy).unwrap();
        let (a, ra) = run();
        let (b, rb) = run();
        assert_eq!(ra, rb);
        for (x, y) in a.prices.iter().zip(&b.prices) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
