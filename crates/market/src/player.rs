//! Players and the market container.

use std::fmt;
use std::sync::Arc;

use crate::equilibrium::{find_equilibrium, EquilibriumOptions, EquilibriumOutcome};
use crate::{MarketError, ResourceSpace, Result, Utility};

/// A market participant: a named utility function plus a budget.
///
/// The utility is held behind an [`Arc`] so that players are cheap to clone
/// and mechanisms can re-run the same market under different budget
/// assignments without copying utility state.
#[derive(Clone)]
pub struct Player {
    name: String,
    budget: f64,
    utility: Arc<dyn Utility>,
}

impl Player {
    /// Creates a player.
    ///
    /// # Panics
    ///
    /// Does not panic; a non-finite or negative budget is clamped by
    /// [`Market::new`] validation instead.
    pub fn new(name: impl Into<String>, budget: f64, utility: Arc<dyn Utility>) -> Self {
        Self {
            name: name.into(),
            budget,
            utility,
        }
    }

    /// The player's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The player's budget `B_i`.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// Replaces the player's budget (used by budget re-assignment schemes).
    pub fn set_budget(&mut self, budget: f64) {
        self.budget = budget;
    }

    /// The player's utility function.
    pub fn utility(&self) -> &Arc<dyn Utility> {
        &self.utility
    }

    /// Convenience: evaluates the player's utility at an allocation.
    pub fn utility_of(&self, r: &[f64]) -> f64 {
        self.utility.value(r)
    }
}

impl fmt::Debug for Player {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Player")
            .field("name", &self.name)
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

/// A market: a [`ResourceSpace`] plus the set of [`Player`]s bidding on it.
///
/// See the [crate-level docs](crate) for a worked example.
#[derive(Debug, Clone)]
pub struct Market {
    resources: ResourceSpace,
    players: Vec<Player>,
}

impl Market {
    /// Creates a market.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::Empty`] if `players` is empty, or
    /// [`MarketError::InvalidValue`] if a player's budget is negative or
    /// non-finite.
    pub fn new(resources: ResourceSpace, players: Vec<Player>) -> Result<Self> {
        if players.is_empty() {
            return Err(MarketError::Empty { what: "players" });
        }
        for p in &players {
            if !p.budget.is_finite() || p.budget < 0.0 {
                return Err(MarketError::InvalidValue {
                    what: "budget",
                    value: p.budget,
                });
            }
        }
        Ok(Self { resources, players })
    }

    /// The traded resources.
    pub fn resources(&self) -> &ResourceSpace {
        &self.resources
    }

    /// The players.
    pub fn players(&self) -> &[Player] {
        &self.players
    }

    /// Mutable access to the players (e.g. for budget re-assignment).
    pub fn players_mut(&mut self) -> &mut [Player] {
        &mut self.players
    }

    /// Number of players `N`.
    pub fn len(&self) -> usize {
        self.players.len()
    }

    /// Always `false` (a market cannot be constructed empty); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.players.is_empty()
    }

    /// Current budgets, indexed by player.
    pub fn budgets(&self) -> Vec<f64> {
        self.players.iter().map(Player::budget).collect()
    }

    /// Runs the iterative bidding–pricing process to a market equilibrium
    /// using each player's stored budget (§2.1 of the paper).
    ///
    /// # Errors
    ///
    /// Propagates construction errors from degenerate dimensions; an
    /// equilibrium search that hits the iteration fail-safe is **not** an
    /// error — inspect [`EquilibriumOutcome::converged`].
    pub fn equilibrium(&self, options: &EquilibriumOptions) -> Result<EquilibriumOutcome> {
        let budgets = self.budgets();
        self.equilibrium_with_budgets(&budgets, options)
    }

    /// Runs the equilibrium search under an explicit budget assignment,
    /// leaving the players' stored budgets untouched.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::DimensionMismatch`] if `budgets.len()` differs
    /// from the number of players, or [`MarketError::InvalidValue`] for a
    /// negative/non-finite budget.
    pub fn equilibrium_with_budgets(
        &self,
        budgets: &[f64],
        options: &EquilibriumOptions,
    ) -> Result<EquilibriumOutcome> {
        if budgets.len() != self.players.len() {
            return Err(MarketError::DimensionMismatch {
                what: "budgets",
                expected: self.players.len(),
                actual: budgets.len(),
            });
        }
        for &b in budgets {
            if !b.is_finite() || b < 0.0 {
                return Err(MarketError::InvalidValue {
                    what: "budget",
                    value: b,
                });
            }
        }
        find_equilibrium(self, budgets, options)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::utility::LinearUtility;

    fn linear_player(name: &str, budget: f64, weights: Vec<f64>) -> Player {
        Player::new(name, budget, Arc::new(LinearUtility::new(weights).unwrap()))
    }

    #[test]
    fn market_construction_and_accessors() {
        let resources = ResourceSpace::new(vec![10.0, 5.0]).unwrap();
        let market = Market::new(
            resources,
            vec![
                linear_player("a", 100.0, vec![1.0, 0.0]),
                linear_player("b", 50.0, vec![0.0, 1.0]),
            ],
        )
        .unwrap();
        assert_eq!(market.len(), 2);
        assert!(!market.is_empty());
        assert_eq!(market.budgets(), vec![100.0, 50.0]);
        assert_eq!(market.players()[0].name(), "a");
        assert_eq!(market.players()[0].utility_of(&[3.0, 9.0]), 3.0);
    }

    #[test]
    fn market_rejects_empty_or_invalid() {
        let resources = ResourceSpace::new(vec![10.0]).unwrap();
        assert!(Market::new(resources.clone(), vec![]).is_err());
        assert!(Market::new(resources, vec![linear_player("a", -5.0, vec![1.0])]).is_err());
    }

    #[test]
    fn budget_mutation() {
        let mut p = linear_player("a", 100.0, vec![1.0]);
        p.set_budget(40.0);
        assert_eq!(p.budget(), 40.0);
    }

    #[test]
    fn debug_impl_nonempty() {
        let p = linear_player("a", 1.0, vec![1.0]);
        assert!(format!("{p:?}").contains("Player"));
    }

    #[test]
    fn equilibrium_with_wrong_budget_len_errors() {
        let resources = ResourceSpace::new(vec![10.0]).unwrap();
        let market = Market::new(
            resources,
            vec![
                linear_player("a", 10.0, vec![1.0]),
                linear_player("b", 10.0, vec![1.0]),
            ],
        )
        .unwrap();
        let err = market
            .equilibrium_with_budgets(&[10.0], &EquilibriumOptions::default())
            .unwrap_err();
        assert!(matches!(err, MarketError::DimensionMismatch { .. }));
    }
}
