//! Iterative bidding–pricing equilibrium search (§2.1 and §6.4).
//!
//! The market repeatedly (1) broadcasts the current prices and (2) lets each
//! player adjust its bids with the hill climber in [`crate::bidding`]. The
//! process stops when prices fluctuate by less than
//! [`EquilibriumOptions::price_tolerance`] between consecutive iterations
//! (the paper monitors prices and assumes convergence "when they fluctuate
//! within 1%"), or when the
//! [`EquilibriumOptions::max_iterations`] fail-safe trips (the paper
//! "simply terminate\[s\] the equilibrium finding algorithm after 30
//! iterations").
//!
//! # Sweep scheme and parallelism
//!
//! Within one iteration every player best-responds to a *snapshot* of the
//! bids from the end of the previous iteration (a Jacobi sweep). This
//! mirrors the paper's architecture — "each core … is actively optimizing
//! its resource assignment largely independently", reconciled only through
//! pricing — and makes the `N` per-player responses of an iteration
//! mutually independent, so [`EquilibriumOptions::parallel`] can fan them
//! out across threads. Because each response is a pure function of the
//! snapshot, and rows are reassembled in player order, the outcome is
//! **bit-identical** under [`ParallelPolicy::Serial`], `Auto`, and any
//! `Threads(n)` (asserted by the `parallel_determinism` integration
//! tests).
//!
//! The per-iteration cost is `O(N·M)` plus the hill climbs: the `Σ_i b_ij`
//! column totals are memoized once per iteration instead of being re-summed
//! per player, and each best response runs allocation-free against a
//! per-worker [`crate::bidding::BidScratch`].

use crate::bidding::{best_response_into, BidScratch, BiddingOptions};
use crate::par::{self, ParallelPolicy};
use crate::pricing;
use crate::{AllocationMatrix, BidMatrix, Market, Result};

/// Options for the equilibrium search.
#[derive(Debug, Clone, PartialEq)]
pub struct EquilibriumOptions {
    /// Fail-safe iteration cap (paper: 30).
    pub max_iterations: usize,
    /// Relative price-fluctuation threshold for convergence (paper: 1%).
    pub price_tolerance: f64,
    /// Options forwarded to each player's hill-climbing best response.
    pub bidding: BiddingOptions,
    /// Record the price vector after every iteration in
    /// [`EquilibriumOutcome::price_history`] (for convergence studies).
    pub record_history: bool,
    /// How the per-player best-response fan-out executes. Purely an
    /// execution knob: results are bit-identical under every policy.
    pub parallel: ParallelPolicy,
}

impl Default for EquilibriumOptions {
    fn default() -> Self {
        Self {
            max_iterations: 30,
            price_tolerance: 0.01,
            bidding: BiddingOptions::default(),
            record_history: false,
            parallel: ParallelPolicy::Auto,
        }
    }
}

impl EquilibriumOptions {
    /// A high-precision variant used by the analytical evaluation phase:
    /// finer bid steps and a tighter price tolerance than the defaults.
    pub fn precise() -> Self {
        Self {
            max_iterations: 60,
            price_tolerance: 0.002,
            bidding: BiddingOptions {
                lambda_tolerance: 0.02,
                min_step_fraction: 0.001,
            },
            record_history: false,
            parallel: ParallelPolicy::Auto,
        }
    }

    /// Returns `self` with the parallel policy replaced — convenience for
    /// mechanism/bench plumbing.
    #[must_use]
    pub fn with_parallel(mut self, policy: ParallelPolicy) -> Self {
        self.parallel = policy;
        self
    }
}

/// The result of an equilibrium search.
#[derive(Debug, Clone)]
pub struct EquilibriumOutcome {
    /// Final bids.
    pub bids: BidMatrix,
    /// Final proportional prices.
    pub prices: Vec<f64>,
    /// Final allocation (exhaustive: columns sum to capacities).
    pub allocation: AllocationMatrix,
    /// Per-player utility at the final allocation.
    pub utilities: Vec<f64>,
    /// Per-player marginal utility of money `λ_i` at the final bids.
    pub lambdas: Vec<f64>,
    /// Bidding–pricing iterations executed.
    pub iterations: usize,
    /// Whether prices met the fluctuation threshold before the fail-safe.
    pub converged: bool,
    /// Per-iteration price vectors (only populated when
    /// [`EquilibriumOptions::record_history`] is set).
    pub price_history: Vec<Vec<f64>>,
}

impl EquilibriumOutcome {
    /// System efficiency (social welfare) at this equilibrium:
    /// `Σ_i U_i(r_i)` — Definition 1 of the paper. When utilities are
    /// normalized IPC this is exactly *weighted speedup* (Eq. 5).
    pub fn efficiency(&self) -> f64 {
        self.utilities.iter().sum()
    }
}

pub(crate) fn find_equilibrium(
    market: &Market,
    budgets: &[f64],
    options: &EquilibriumOptions,
) -> Result<EquilibriumOutcome> {
    let n = market.len();
    let m = market.resources().len();
    let capacities = market.resources().capacities();

    let mut bids = BidMatrix::equal_split(budgets, m)?;
    // Double buffer for the Jacobi sweep: responses for iteration k+1 are
    // written into `next` while `bids` holds the iteration-k snapshot.
    let mut next = bids.clone();
    let mut col_sums = vec![0.0; m];
    let mut prices = pricing::prices(&bids, market.resources());
    let mut iterations = 0;
    let mut converged = false;
    let mut price_history = Vec::new();
    let threads = options.parallel.resolved_threads(n);

    while iterations < options.max_iterations {
        iterations += 1;
        // Step 2: every player best-responds to the snapshot. The column
        // totals are memoized once, so each player's `y_ij = Σ b_kj − b_ij`
        // costs O(M) instead of O(N·M).
        for (j, sum) in col_sums.iter_mut().enumerate() {
            *sum = bids.column_sum(j);
        }
        {
            let snapshot = &bids;
            let col_sums = &col_sums;
            par::for_each_row(
                threads,
                next.as_mut_slice(),
                m,
                || (BidScratch::new(m), vec![0.0; m]),
                |(scratch, others), i, row| {
                    for (j, y) in others.iter_mut().enumerate() {
                        *y = col_sums[j] - snapshot.get(i, j);
                    }
                    best_response_into(
                        market.players()[i].utility().as_ref(),
                        budgets[i],
                        others,
                        capacities,
                        &options.bidding,
                        scratch,
                        row,
                    );
                },
            );
        }
        std::mem::swap(&mut bids, &mut next);
        let new_prices = pricing::prices(&bids, market.resources());
        let fluctuation = prices
            .iter()
            .zip(&new_prices)
            .map(|(&old, &new)| (new - old).abs() / old.abs().max(new.abs()).max(1e-12))
            .fold(0.0_f64, f64::max);
        prices = new_prices;
        if options.record_history {
            price_history.push(prices.clone());
        }
        if fluctuation <= options.price_tolerance {
            converged = true;
            break;
        }
    }

    let allocation = pricing::allocate(&bids, market.resources());
    let utilities: Vec<f64> = (0..n)
        .map(|i| market.players()[i].utility_of(allocation.row(i)))
        .collect();
    let lambdas: Vec<f64> = (0..n)
        .map(|i| lambda_at(market, &bids, i, capacities))
        .collect();

    Ok(EquilibriumOutcome {
        bids,
        prices,
        allocation,
        utilities,
        lambdas,
        iterations,
        converged,
        price_history,
    })
}

/// Marginal utility of money for player `i` at the current bids: the best
/// rate `∂U_i/∂b_ij` available across resources (Eq. 4 / Eq. 7).
pub fn lambda_at(market: &Market, bids: &BidMatrix, i: usize, capacities: &[f64]) -> f64 {
    let m = capacities.len();
    let allocation: Vec<f64> = (0..m)
        .map(|j| {
            let y = bids.others_sum(i, j);
            crate::pricing::predicted_share(bids.get(i, j), y, capacities[j])
        })
        .collect();
    let utility = market.players()[i].utility();
    (0..m)
        .map(|j| {
            let b = bids.get(i, j);
            let y = bids.others_sum(i, j);
            let denom = (b + y).max(1e-12);
            let dr_db = y * capacities[j] / (denom * denom);
            utility.marginal(&allocation, j) * dr_db
        })
        .fold(0.0_f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::SeparableUtility;
    use crate::{Player, ResourceSpace};
    use std::sync::Arc;

    fn two_player_market(w0: [f64; 2], w1: [f64; 2]) -> Market {
        let caps = [16.0, 80.0];
        let resources = ResourceSpace::new(caps.to_vec()).unwrap();
        Market::new(
            resources,
            vec![
                Player::new(
                    "a",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&w0, &caps).unwrap()),
                ),
                Player::new(
                    "b",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&w1, &caps).unwrap()),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn converges_and_exhausts_resources() {
        let market = two_player_market([0.8, 0.2], [0.2, 0.8]);
        let out = market.equilibrium(&EquilibriumOptions::default()).unwrap();
        assert!(out.converged, "took {} iterations", out.iterations);
        assert!(out.iterations <= 30);
        assert!(out
            .allocation
            .is_exhaustive(market.resources().capacities(), 1e-9));
        assert_eq!(out.utilities.len(), 2);
        assert!(out.efficiency() > 0.0);
    }

    #[test]
    fn complementary_players_get_their_preferred_resource() {
        let market = two_player_market([0.9, 0.1], [0.1, 0.9]);
        let out = market.equilibrium(&EquilibriumOptions::precise()).unwrap();
        // Player a should end up with most of resource 0, player b with most
        // of resource 1.
        assert!(out.allocation.get(0, 0) > out.allocation.get(1, 0));
        assert!(out.allocation.get(1, 1) > out.allocation.get(0, 1));
    }

    #[test]
    fn symmetric_players_split_evenly() {
        let market = two_player_market([0.5, 0.5], [0.5, 0.5]);
        let out = market.equilibrium(&EquilibriumOptions::precise()).unwrap();
        for j in 0..2 {
            let a = out.allocation.get(0, j);
            let b = out.allocation.get(1, j);
            assert!(
                (a - b).abs() / (a + b) < 0.05,
                "resource {j}: {a} vs {b} not symmetric"
            );
        }
        // Symmetric market ⇒ λs agree ⇒ MUR ≈ 1.
        let (lo, hi) = (
            out.lambdas.iter().cloned().fold(f64::INFINITY, f64::min),
            out.lambdas.iter().cloned().fold(0.0_f64, f64::max),
        );
        assert!(lo / hi > 0.9, "λs {:?}", out.lambdas);
    }

    #[test]
    fn budget_override_shifts_allocation() {
        let market = two_player_market([0.5, 0.5], [0.5, 0.5]);
        let out = market
            .equilibrium_with_budgets(&[150.0, 50.0], &EquilibriumOptions::precise())
            .unwrap();
        // The richer symmetric player gets more of everything.
        assert!(out.allocation.get(0, 0) > out.allocation.get(1, 0));
        assert!(out.allocation.get(0, 1) > out.allocation.get(1, 1));
    }

    #[test]
    fn price_history_recorded_on_request() {
        let market = two_player_market([0.8, 0.2], [0.2, 0.8]);
        let mut opts = EquilibriumOptions::default();
        assert!(market.equilibrium(&opts).unwrap().price_history.is_empty());
        opts.record_history = true;
        let out = market.equilibrium(&opts).unwrap();
        assert_eq!(out.price_history.len(), out.iterations);
        assert_eq!(out.price_history.last().unwrap(), &out.prices);
    }

    #[test]
    fn prices_reflect_contention() {
        // Both players want resource 0 badly; its price should exceed the
        // price of the unloved resource 1 (per unit).
        let market = two_player_market([0.9, 0.1], [0.9, 0.1]);
        let out = market.equilibrium(&EquilibriumOptions::default()).unwrap();
        assert!(out.prices[0] > out.prices[1]);
    }

    #[test]
    fn zero_budget_player_gets_only_free_leftovers() {
        let caps = [16.0, 80.0];
        let resources = ResourceSpace::new(caps.to_vec()).unwrap();
        let market = Market::new(
            resources,
            vec![
                Player::new(
                    "rich",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&[0.5, 0.5], &caps).unwrap()),
                ),
                Player::new(
                    "broke",
                    0.0,
                    Arc::new(SeparableUtility::proportional(&[0.5, 0.5], &caps).unwrap()),
                ),
            ],
        )
        .unwrap();
        let out = market.equilibrium(&EquilibriumOptions::default()).unwrap();
        assert!(out.allocation.get(1, 0) < 1e-9);
        assert!((out.allocation.get(0, 0) - caps[0]).abs() < 1e-9);
    }
}
