//! Iterative bidding–pricing equilibrium search (§2.1 and §6.4).
//!
//! The market repeatedly (1) broadcasts the current prices and (2) lets each
//! player adjust its bids with the hill climber in [`crate::bidding`]. The
//! process stops when prices fluctuate by less than
//! [`EquilibriumOptions::price_tolerance`] between consecutive iterations
//! (the paper monitors prices and assumes convergence "when they fluctuate
//! within 1%"), or when the
//! [`EquilibriumOptions::max_iterations`] fail-safe trips (the paper
//! "simply terminate\[s\] the equilibrium finding algorithm after 30
//! iterations").
//!
//! # Sweep scheme and parallelism
//!
//! Within one iteration every player best-responds to a *snapshot* of the
//! bids from the end of the previous iteration (a Jacobi sweep). This
//! mirrors the paper's architecture — "each core … is actively optimizing
//! its resource assignment largely independently", reconciled only through
//! pricing — and makes the `N` per-player responses of an iteration
//! mutually independent, so [`EquilibriumOptions::parallel`] can fan them
//! out across threads. Because each response is a pure function of the
//! snapshot, and rows are reassembled in player order, the outcome is
//! **bit-identical** under [`ParallelPolicy::Serial`], `Auto`, and any
//! `Threads(n)` (asserted by the `parallel_determinism` integration
//! tests).
//!
//! The per-iteration cost is `O(N·M)` plus the hill climbs: the `Σ_i b_ij`
//! column totals are memoized once per iteration instead of being re-summed
//! per player, and each best response runs allocation-free against a
//! per-worker [`crate::bidding::BidScratch`].

use std::sync::Arc;

use rebudget_telemetry as telemetry;

use crate::bidding::{best_response_into, BidScratch, BiddingOptions};
use crate::deadline::DeadlineBudget;
use crate::par::{self, ParallelPolicy};
use crate::pricing;
use crate::{AllocationMatrix, BidMatrix, Market, MarketError, Result};

/// Damping factors below this floor stop halving — at 1/8 the sweep is
/// already heavily smoothed and further back-off only slows progress.
/// Shared with the first-order engines in [`crate::first_order`].
pub(crate) const MIN_DAMPING: f64 = 0.125;

/// A fluctuation this many times worse than the best stable iterate (or
/// the tolerance, whichever is larger) counts as divergence and triggers
/// a restart from the last stable price vector.
pub(crate) const DIVERGENCE_FACTOR: f64 = 8.0;

/// Fail-safe on restarts so a pathological market cannot livelock the
/// solver by diverging immediately after every restart.
pub(crate) const MAX_RESTARTS: usize = 2;

/// Which equilibrium engine a solve runs on.
///
/// All engines report the same residual semantics (see
/// [`crate::residual`]) and flow through the same
/// [`SolveReport`]/[`DeadlineBudget`]/telemetry plumbing, but they answer
/// slightly different questions:
///
/// * [`SolverKind::Jacobi`] — the paper's engine: each player runs the
///   §4.1.2 hill climb *anticipating* how its own bid moves prices
///   (Eq. 2). Computes the price-anticipating Nash equilibrium; `O(N·M)`
///   per iteration over a dense bid matrix. The solver of record for the
///   paper's 8–64-core markets and the small-N oracle.
/// * [`SolverKind::ProportionalResponse`] — proportional response
///   dynamics on the Eisenberg–Gale program: players are *price takers*.
///   Linear-time in the number of nonzero (player, resource) interests;
///   converges at `10⁵`–`10⁶` players (see
///   [`crate::proportional_response`]).
/// * [`SolverKind::MirrorDescent`] — entropic mirror descent on the same
///   program: a damped generalization of proportional response with a
///   tunable step (see [`crate::mirror_descent`]).
///
/// The price-anticipating and price-taking equilibria coincide as
/// `N → ∞` (each player's bid stops moving prices) but differ at small
/// `N`; cross-validation against Jacobi therefore goes through the dense
/// first-order reference in [`crate::fisher`], which computes the same
/// price-taking equilibrium on dense storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Dense Jacobi best-response hill climbing (the paper's engine).
    #[default]
    Jacobi,
    /// First-order proportional response dynamics (price-taking).
    ProportionalResponse,
    /// First-order entropic mirror descent (price-taking, damped step).
    MirrorDescent,
}

impl SolverKind {
    /// Parses the CLI spelling (`jacobi` | `propresp` | `mirror`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "jacobi" => Some(SolverKind::Jacobi),
            "propresp" => Some(SolverKind::ProportionalResponse),
            "mirror" => Some(SolverKind::MirrorDescent),
            _ => None,
        }
    }

    /// Stable machine-readable name (CLI flag value, bench JSON field).
    pub fn label(self) -> &'static str {
        match self {
            SolverKind::Jacobi => "jacobi",
            SolverKind::ProportionalResponse => "propresp",
            SolverKind::MirrorDescent => "mirror",
        }
    }
}

/// A bid seed carried from a previous solve, so an online re-solve starts
/// from the last quantum's equilibrium instead of from scratch.
///
/// The layout matches the engine that consumes it:
///
/// * dense engines (Jacobi and the dense first-order reference) expect a
///   row-major `n × m` matrix — [`WarmStart::from_outcome`];
/// * the sparse engines expect the CSR value array of the market's
///   interest pattern, `nnz` entries — [`WarmStart::from_sparse`].
///
/// Warm starting is **best effort and row-local**: a seed whose length
/// does not match the market is ignored wholesale, and any individual row
/// that is unusable (non-finite or negative entries, or a non-positive
/// row sum) falls back to the cold equal-split start for that player
/// only. Usable rows are rescaled to the player's *current* budget, so a
/// budget change between quanta keeps the seed feasible.
///
/// The multiplicative first-order engines additionally **lift** exact-zero
/// seed entries to a tiny positive fraction of the budget before seeding:
/// a converged multiplicative run underflows unattractive bids to exact
/// `0.0`, and a zero bid can never revive under the multiplicative step —
/// rejecting such rows outright would cold-start nearly every player and
/// forfeit the warm start precisely where it matters (the online server's
/// tick-to-tick re-solves). A warm-started solve is still a pure function
/// of `(market, budgets, options)` — determinism and the bit-identical
/// parallel-policy guarantee are unaffected.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WarmStart {
    /// The seed bids (dense row-major `n × m`, or sparse CSR values).
    pub bids: Vec<f64>,
}

impl WarmStart {
    /// Seeds the next dense solve from a previous outcome's final bids.
    pub fn from_outcome(outcome: &EquilibriumOutcome) -> Self {
        Self {
            bids: outcome.bids.as_slice().to_vec(),
        }
    }

    /// Seeds the next sparse solve from a previous sparse outcome's final
    /// CSR bid values (the interest pattern must be unchanged; a changed
    /// pattern makes the lengths disagree and the seed is ignored).
    pub fn from_sparse(outcome: &crate::sparse::SparseOutcome) -> Self {
        Self {
            bids: outcome.bids.vals().to_vec(),
        }
    }

    /// Wraps the seed for [`EquilibriumOptions::warm_start`].
    pub fn shared(self) -> Option<Arc<Self>> {
        Some(Arc::new(self))
    }
}

/// Validates one warm row: every entry finite and ≥ the floor, with a
/// strictly positive finite sum. `floor` is `0.0` everywhere today:
/// Jacobi tolerates zero bids outright, and the multiplicative engines
/// lift zeros via [`warm_overlay_multiplicative`] instead of rejecting
/// the row.
pub(crate) fn warm_row_usable(row: &[f64], floor: f64) -> bool {
    let mut sum = 0.0;
    for &b in row {
        if !b.is_finite() || b < floor {
            return false;
        }
        sum += b;
    }
    sum.is_finite() && sum > 0.0
}

/// Fraction of a player's budget (spread over the row) used to lift a
/// zero seed bid back to strictly positive before a multiplicative
/// solve. Small enough that a lifted entry contributes nothing to the
/// seeded prices, large enough that the multiplicative step can grow it
/// back if the new market wants that bid nonzero.
const WARM_LIFT: f64 = 1e-12;

/// Overlays one warm seed row for a multiplicative engine: every entry
/// is lifted to at least `budget · WARM_LIFT / len`, then the row is
/// rescaled to sum to the player's current budget — strictly positive
/// throughout, as the multiplicative step requires. Returns `false`
/// (leaving `dst` at its cold start) when the seed is unusable: empty
/// row, zero budget, non-finite or negative entries, or a non-positive
/// sum.
pub(crate) fn warm_overlay_multiplicative(dst: &mut [f64], seed: &[f64], budget: f64) -> bool {
    if seed.is_empty() || budget <= 0.0 || !warm_row_usable(seed, 0.0) {
        return false;
    }
    let floor = budget * WARM_LIFT / seed.len() as f64;
    let sum: f64 = seed.iter().map(|&b| b.max(floor)).sum();
    let scale = budget / sum;
    for (dst, &b) in dst.iter_mut().zip(seed) {
        *dst = b.max(floor) * scale;
    }
    true
}

/// Options for the equilibrium search.
#[derive(Debug, Clone, PartialEq)]
pub struct EquilibriumOptions {
    /// Fail-safe iteration cap (paper: 30).
    pub max_iterations: usize,
    /// Relative price-fluctuation threshold for convergence (paper: 1%).
    ///
    /// The residual compared against this threshold is the relative
    /// excess demand of [`crate::residual::relative_price_gap`] for every
    /// [`SolverKind`].
    pub price_tolerance: f64,
    /// Options forwarded to each player's hill-climbing best response
    /// (Jacobi engine only; first-order engines have no hill climb).
    pub bidding: BiddingOptions,
    /// Record the price vector after every iteration in
    /// [`EquilibriumOutcome::price_history`] (for convergence studies).
    pub record_history: bool,
    /// How the per-player best-response fan-out executes. Purely an
    /// execution knob: results are bit-identical under every policy.
    pub parallel: ParallelPolicy,
    /// Wall-clock / iteration budget for the solve. When exhausted the
    /// search stops and returns its best-effort iterate with
    /// [`SolveReport::timed_out`] set — it never spins past the budget.
    /// The default is unbounded, which changes nothing.
    pub deadline: DeadlineBudget,
    /// Which engine runs the solve. The default ([`SolverKind::Jacobi`])
    /// reproduces the paper's behaviour exactly.
    pub solver: SolverKind,
    /// Bid seed from a previous solve (see [`WarmStart`]). `None` — the
    /// default — is the cold equal-split start and changes nothing.
    /// Behind an `Arc` so cloning options (the retry ladder does this per
    /// rung) never copies a large seed.
    pub warm_start: Option<Arc<WarmStart>>,
}

impl Default for EquilibriumOptions {
    fn default() -> Self {
        Self {
            max_iterations: 30,
            price_tolerance: 0.01,
            bidding: BiddingOptions::default(),
            record_history: false,
            parallel: ParallelPolicy::Auto,
            deadline: DeadlineBudget::UNBOUNDED,
            solver: SolverKind::Jacobi,
            warm_start: None,
        }
    }
}

impl EquilibriumOptions {
    /// A high-precision variant used by the analytical evaluation phase:
    /// finer bid steps and a tighter price tolerance than the defaults.
    pub fn precise() -> Self {
        Self {
            max_iterations: 60,
            price_tolerance: 0.002,
            bidding: BiddingOptions {
                lambda_tolerance: 0.02,
                min_step_fraction: 0.001,
            },
            record_history: false,
            parallel: ParallelPolicy::Auto,
            deadline: DeadlineBudget::UNBOUNDED,
            solver: SolverKind::Jacobi,
            warm_start: None,
        }
    }

    /// The configuration for production-scale markets: proportional
    /// response to paper-grade precision (`1e-6` relative excess demand)
    /// with an iteration cap sized for `10⁶`-player markets.
    pub fn large_scale() -> Self {
        Self {
            max_iterations: 20_000,
            price_tolerance: 1e-6,
            bidding: BiddingOptions::default(),
            record_history: false,
            parallel: ParallelPolicy::Auto,
            deadline: DeadlineBudget::UNBOUNDED,
            solver: SolverKind::ProportionalResponse,
            warm_start: None,
        }
    }

    /// Returns `self` with the parallel policy replaced — convenience for
    /// mechanism/bench plumbing.
    #[must_use]
    pub fn with_parallel(mut self, policy: ParallelPolicy) -> Self {
        self.parallel = policy;
        self
    }

    /// Returns `self` with the solver engine replaced.
    #[must_use]
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Returns `self` with the warm-start seed replaced (`None` clears
    /// it back to the cold equal-split start).
    #[must_use]
    pub fn with_warm_start(mut self, warm: Option<Arc<WarmStart>>) -> Self {
        self.warm_start = warm;
        self
    }
}

/// A guardrail intervention taken during the equilibrium search.
///
/// Every action is recorded in [`SolveReport::recovery`] so callers can
/// distinguish a clean solve from one the guardrails had to rescue.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RecoveryAction {
    /// Prices stopped improving (oscillation/stall), so the Jacobi sweep
    /// was damped: new bids become `(1−d)·old + d·new`. Damping backs off
    /// exponentially (`d ← d/2`, floored at 1/8), mirroring ReBudget's own
    /// step back-off idiom.
    OscillationDamped {
        /// Iteration at which damping was tightened.
        iteration: u64,
        /// The damping factor `d` in effect after tightening.
        damping: f64,
    },
    /// Prices diverged (or went non-finite), so the search was restarted
    /// from the lowest-residual stable bid matrix seen so far.
    RestartedFromStable {
        /// Iteration at which the restart happened.
        iteration: u64,
    },
    /// A non-finite value (NaN/∞) appeared and was repaired in place —
    /// e.g. a best-response row from a faulty utility was replaced by the
    /// player's previous bids, or a non-finite utility was zeroed.
    NonFiniteSanitized {
        /// Iteration at which the repair happened (0 = after the loop).
        iteration: u64,
        /// Which quantity went non-finite.
        what: &'static str,
    },
}

impl RecoveryAction {
    /// Stable machine-readable name (the journal's `recovery.action`).
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryAction::OscillationDamped { .. } => "oscillation_damped",
            RecoveryAction::RestartedFromStable { .. } => "restarted_from_stable",
            RecoveryAction::NonFiniteSanitized { .. } => "non_finite_sanitized",
        }
    }

    /// Iteration the action fired at.
    pub fn iteration(&self) -> u64 {
        match self {
            RecoveryAction::OscillationDamped { iteration, .. }
            | RecoveryAction::RestartedFromStable { iteration }
            | RecoveryAction::NonFiniteSanitized { iteration, .. } => *iteration,
        }
    }
}

/// Structured description of how an equilibrium solve went.
///
/// Replaces the bare `converged: bool` the solver used to return: callers
/// can now see the final residual, every guardrail intervention, and turn
/// non-convergence into a typed error via [`SolveReport::ensure_converged`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolveReport {
    /// Whether prices met the fluctuation threshold before the fail-safe.
    pub converged: bool,
    /// Bidding–pricing iterations executed. All iteration/round counts in
    /// this workspace are `u64` (see DESIGN.md "Observability"): counts
    /// are data that cross serialization and telemetry boundaries, so
    /// they must not vary with the host's pointer width.
    pub iterations: u64,
    /// Final convergence residual: the **relative excess demand** between
    /// the last two iterates, `max_j |p'_j − p_j| / max(|p_j|, |p'_j|)`
    /// over per-good prices (see [`crate::residual::relative_price_gap`]).
    /// Identical semantics for every [`SolverKind`] — ≤ tolerance iff
    /// `converged`; for non-converged solves this is the residual of the
    /// iterate that was actually returned, i.e. the best stable one.
    pub residual: f64,
    /// Guardrail interventions, in the order they fired.
    pub recovery: Vec<RecoveryAction>,
    /// The solve stopped because its [`crate::DeadlineBudget`] ran out,
    /// not because it converged or hit the iteration fail-safe.
    pub timed_out: bool,
}

impl SolveReport {
    /// `true` when the solve converged without any guardrail intervention.
    pub fn is_clean(&self) -> bool {
        self.converged && self.recovery.is_empty() && !self.timed_out
    }

    /// Converts a deadline overrun into a typed error; `Ok(())` otherwise.
    pub fn ensure_within_deadline(&self) -> Result<()> {
        if self.timed_out {
            Err(MarketError::DeadlineExceeded {
                iterations: self.iterations,
                residual: self.residual,
            })
        } else {
            Ok(())
        }
    }

    /// Converts non-convergence into a typed error; `Ok(())` otherwise.
    pub fn ensure_converged(&self) -> Result<()> {
        if self.converged {
            Ok(())
        } else {
            Err(MarketError::NonConvergence {
                iterations: self.iterations,
                residual: self.residual,
            })
        }
    }
}

/// The result of an equilibrium search.
#[derive(Debug, Clone)]
pub struct EquilibriumOutcome {
    /// Final bids.
    pub bids: BidMatrix,
    /// Final proportional prices.
    pub prices: Vec<f64>,
    /// Final allocation (exhaustive: columns sum to capacities).
    pub allocation: AllocationMatrix,
    /// Per-player utility at the final allocation.
    pub utilities: Vec<f64>,
    /// Per-player marginal utility of money `λ_i` at the final bids.
    pub lambdas: Vec<f64>,
    /// Bidding–pricing iterations executed.
    pub iterations: u64,
    /// How the solve went: convergence, residual, and every guardrail
    /// intervention ([`RecoveryAction`]) taken along the way.
    pub report: SolveReport,
    /// Per-iteration price vectors (only populated when
    /// [`EquilibriumOptions::record_history`] is set). When the solver
    /// falls back to the best stable iterate after a non-converged run,
    /// that iterate's prices are appended so the last entry always matches
    /// [`EquilibriumOutcome::prices`].
    pub price_history: Vec<Vec<f64>>,
}

impl EquilibriumOutcome {
    /// System efficiency (social welfare) at this equilibrium:
    /// `Σ_i U_i(r_i)` — Definition 1 of the paper. When utilities are
    /// normalized IPC this is exactly *weighted speedup* (Eq. 5).
    pub fn efficiency(&self) -> f64 {
        self.utilities.iter().sum()
    }

    /// Whether prices met the fluctuation threshold before the fail-safe
    /// (shorthand for `report.converged`).
    pub fn converged(&self) -> bool {
        self.report.converged
    }
}

/// Records `action` in the solve's recovery trace and, when telemetry is
/// enabled, mirrors it into the journal. Called only from the solvers'
/// serial post-sweep sections, so the event order is deterministic.
/// Shared with the first-order engines (`fisher`, `first_order`).
pub(crate) fn push_recovery(recovery: &mut Vec<RecoveryAction>, action: RecoveryAction) {
    if telemetry::enabled() {
        let mut event = telemetry::Event::new("recovery")
            .field_u64("iteration", action.iteration())
            .field_str("action", action.label());
        if let RecoveryAction::NonFiniteSanitized { what, .. } = &action {
            event = event.field_str("what", what);
        }
        telemetry::record(event);
    }
    recovery.push(action);
}

/// Entry point shared by [`crate::Market::equilibrium`] and friends:
/// dispatches on [`EquilibriumOptions::solver`].
pub(crate) fn find_equilibrium(
    market: &Market,
    budgets: &[f64],
    options: &EquilibriumOptions,
) -> Result<EquilibriumOutcome> {
    match options.solver {
        SolverKind::Jacobi => find_equilibrium_jacobi(market, budgets, options),
        kind => crate::fisher::find_equilibrium_first_order(market, budgets, options, kind),
    }
}

/// The paper's engine: Jacobi sweeps of price-anticipating best responses.
fn find_equilibrium_jacobi(
    market: &Market,
    budgets: &[f64],
    options: &EquilibriumOptions,
) -> Result<EquilibriumOutcome> {
    let n = market.len();
    let m = market.resources().len();
    let capacities = market.resources().capacities();

    let _solve_span = telemetry::span!("solve");
    if telemetry::enabled() {
        telemetry::record(
            telemetry::Event::new("solve_start")
                .field_u64("players", n as u64)
                .field_u64("resources", m as u64),
        );
    }

    let mut bids = BidMatrix::equal_split(budgets, m)?;
    // Warm start: overlay usable seed rows over the equal-split baseline,
    // rescaled to each player's current budget (Jacobi tolerates zero
    // bids, so the row floor is 0).
    if let Some(warm) = options.warm_start.as_deref() {
        if warm.bids.len() == n * m {
            for i in 0..n {
                let row = &warm.bids[i * m..(i + 1) * m];
                if budgets[i] > 0.0 && warm_row_usable(row, 0.0) {
                    let scale = budgets[i] / row.iter().sum::<f64>();
                    for (j, &b) in row.iter().enumerate() {
                        bids.set(i, j, b * scale);
                    }
                }
            }
        }
    }
    // Double buffer for the Jacobi sweep: responses for iteration k+1 are
    // written into `next` while `bids` holds the iteration-k snapshot.
    let mut next = bids.clone();
    let mut col_sums = vec![0.0; m];
    let mut prices = pricing::prices(&bids, market.resources());
    let mut iterations: u64 = 0;
    let mut converged = false;
    let mut price_history = Vec::new();
    let threads = options.parallel.resolved_threads(n);

    // Guardrail state. Every guardrail decision below is a deterministic
    // function of the fully-assembled post-sweep state, so the outcome
    // stays bit-identical under every `ParallelPolicy`.
    let mut recovery: Vec<RecoveryAction> = Vec::new();
    let mut damping = 1.0_f64; // 1.0 = undamped Jacobi sweep
    let mut restarts = 0usize;
    // Lowest-residual stable iterate seen so far (restart target and the
    // fallback result for non-converged solves).
    let mut best_bids = bids.clone();
    let mut best_residual = f64::INFINITY;
    let mut prev_fluctuation = f64::INFINITY;
    let mut residual = f64::INFINITY;
    let mut timed_out = false;
    let mut clock = options.deadline.start();

    while iterations < options.max_iterations as u64 {
        iterations += 1;
        // Deadline accounting: charge the iteration up front; the verdict
        // is applied after the sweep so at least one iteration always runs
        // and a convergence reached on the final iteration still counts.
        let deadline_hit = clock.charge(1);
        // Step 2: every player best-responds to the snapshot. The column
        // totals are memoized once, so each player's `y_ij = Σ b_kj − b_ij`
        // costs O(M) instead of O(N·M).
        for (j, sum) in col_sums.iter_mut().enumerate() {
            *sum = bids.column_sum(j);
        }
        {
            let snapshot = &bids;
            let col_sums = &col_sums;
            par::for_each_row(
                threads,
                next.as_mut_slice(),
                m,
                || (BidScratch::new(m), vec![0.0; m]),
                |(scratch, others), i, row| {
                    for (j, y) in others.iter_mut().enumerate() {
                        *y = col_sums[j] - snapshot.get(i, j);
                    }
                    best_response_into(
                        market.players()[i].utility().as_ref(),
                        budgets[i],
                        others,
                        capacities,
                        &options.bidding,
                        scratch,
                        row,
                    );
                },
            );
        }
        // Guardrail: a faulty utility (NaN/∞ evaluations) can poison a
        // best-response row. Replace any non-finite row with the player's
        // previous bids — that row is feasible by construction.
        for i in 0..n {
            if next.row(i).iter().any(|b| !b.is_finite()) {
                for j in 0..m {
                    let prev = bids.get(i, j);
                    next.set(i, j, prev);
                }
                push_recovery(
                    &mut recovery,
                    RecoveryAction::NonFiniteSanitized {
                        iteration: iterations,
                        what: "bid row",
                    },
                );
            }
        }
        // Guardrail: damped sweep. Both rows are budget-feasible, so the
        // convex combination is too.
        if damping < 1.0 {
            for i in 0..n {
                for j in 0..m {
                    let blended = (1.0 - damping) * bids.get(i, j) + damping * next.get(i, j);
                    next.set(i, j, blended);
                }
            }
        }
        std::mem::swap(&mut bids, &mut next);
        let new_prices = pricing::prices(&bids, market.resources());
        let fluctuation = crate::residual::relative_price_gap(&prices, &new_prices);
        prices = new_prices;
        residual = fluctuation;
        if telemetry::enabled() {
            // Serial section (post-sweep): the per-iteration residual and
            // price trace is a deterministic function of the inputs.
            telemetry::record(
                telemetry::Event::new("solver_iteration")
                    .field_u64("iteration", iterations)
                    .field_f64("residual", fluctuation)
                    .field_f64s("prices", &prices),
            );
        }
        if options.record_history {
            price_history.push(prices.clone());
        }
        if fluctuation <= options.price_tolerance {
            converged = true;
            break;
        }
        // Deadline: stop spinning, keep the best-effort iterate. Checked
        // again here (not only at the charge) so a wall clock that expired
        // *during* the sweep is honoured before another sweep starts.
        if deadline_hit || clock.expired() {
            timed_out = true;
            break;
        }
        // Guardrail: divergence ⇒ restart from the last stable iterate,
        // with the sweep damped so the same blow-up does not repeat.
        let diverged = !fluctuation.is_finite()
            || fluctuation > DIVERGENCE_FACTOR * best_residual.max(options.price_tolerance);
        if diverged && restarts < MAX_RESTARTS && best_residual.is_finite() {
            restarts += 1;
            bids.clone_from(&best_bids);
            prices = pricing::prices(&bids, market.resources());
            damping = (damping * 0.5).max(MIN_DAMPING);
            push_recovery(
                &mut recovery,
                RecoveryAction::RestartedFromStable {
                    iteration: iterations,
                },
            );
            prev_fluctuation = f64::INFINITY;
            continue;
        }
        // Guardrail: oscillation/stall ⇒ exponential back-off on the
        // damping factor, echoing ReBudget's own step back-off.
        if fluctuation >= prev_fluctuation && damping > MIN_DAMPING {
            damping = (damping * 0.5).max(MIN_DAMPING);
            push_recovery(
                &mut recovery,
                RecoveryAction::OscillationDamped {
                    iteration: iterations,
                    damping,
                },
            );
        }
        if fluctuation.is_finite() && fluctuation < best_residual {
            best_residual = fluctuation;
            best_bids.clone_from(&bids);
        }
        prev_fluctuation = fluctuation;
    }

    // Non-converged fail-safe: return the lowest-residual stable iterate
    // instead of whatever the last sweep produced.
    if !converged && best_residual < residual {
        bids.clone_from(&best_bids);
        prices = pricing::prices(&bids, market.resources());
        residual = best_residual;
        if options.record_history {
            price_history.push(prices.clone());
        }
    }

    let allocation = pricing::allocate(&bids, market.resources());
    let mut utilities: Vec<f64> = (0..n)
        .map(|i| market.players()[i].utility_of(allocation.row(i)))
        .collect();
    // Final guardrail: a faulty utility can still evaluate non-finite at
    // the settled allocation. Zero it (pessimistic) rather than poisoning
    // efficiency/EF metrics downstream.
    for u in &mut utilities {
        if !u.is_finite() {
            *u = 0.0;
            push_recovery(
                &mut recovery,
                RecoveryAction::NonFiniteSanitized {
                    iteration: iterations,
                    what: "utility",
                },
            );
        }
    }
    let mut lambdas: Vec<f64> = (0..n)
        .map(|i| lambda_at(market, &bids, i, capacities))
        .collect();
    for l in &mut lambdas {
        if !l.is_finite() {
            *l = 0.0;
            push_recovery(
                &mut recovery,
                RecoveryAction::NonFiniteSanitized {
                    iteration: iterations,
                    what: "lambda",
                },
            );
        }
    }

    let report = SolveReport {
        converged,
        iterations,
        residual,
        recovery,
        timed_out,
    };
    if telemetry::enabled() {
        telemetry::record(
            telemetry::Event::new("solve_end")
                .field_u64("iterations", iterations)
                .field_bool("converged", converged)
                .field_f64("residual", residual)
                .field_bool("timed_out", timed_out),
        );
        let registry = &telemetry::global().registry;
        registry.counter("solver.solves").incr();
        registry.counter("solver.iterations").add(iterations);
        registry
            .counter("solver.recoveries")
            .add(report.recovery.len() as u64);
        if timed_out {
            registry.counter("solver.timeouts").incr();
        }
        registry
            .histogram("solver.iterations_per_solve")
            .record(iterations);
        registry.gauge("solver.last_residual").set(residual);
    }
    Ok(EquilibriumOutcome {
        bids,
        prices,
        allocation,
        utilities,
        lambdas,
        iterations,
        report,
        price_history,
    })
}

/// Marginal utility of money for player `i` at the current bids: the best
/// rate `∂U_i/∂b_ij` available across resources (Eq. 4 / Eq. 7).
pub fn lambda_at(market: &Market, bids: &BidMatrix, i: usize, capacities: &[f64]) -> f64 {
    let m = capacities.len();
    let allocation: Vec<f64> = (0..m)
        .map(|j| {
            let y = bids.others_sum(i, j);
            crate::pricing::predicted_share(bids.get(i, j), y, capacities[j])
        })
        .collect();
    let utility = market.players()[i].utility();
    (0..m)
        .map(|j| {
            let b = bids.get(i, j);
            let y = bids.others_sum(i, j);
            let denom = (b + y).max(1e-12);
            let dr_db = y * capacities[j] / (denom * denom);
            utility.marginal(&allocation, j) * dr_db
        })
        .fold(0.0_f64, f64::max)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::utility::SeparableUtility;
    use crate::{Player, ResourceSpace};
    use std::sync::Arc;

    fn two_player_market(w0: [f64; 2], w1: [f64; 2]) -> Market {
        let caps = [16.0, 80.0];
        let resources = ResourceSpace::new(caps.to_vec()).unwrap();
        Market::new(
            resources,
            vec![
                Player::new(
                    "a",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&w0, &caps).unwrap()),
                ),
                Player::new(
                    "b",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&w1, &caps).unwrap()),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn converges_and_exhausts_resources() {
        let market = two_player_market([0.8, 0.2], [0.2, 0.8]);
        let out = market.equilibrium(&EquilibriumOptions::default()).unwrap();
        assert!(out.converged(), "took {} iterations", out.iterations);
        assert!(out.report.is_clean(), "recovery: {:?}", out.report.recovery);
        assert!(out.report.residual <= 0.01);
        assert!(out.report.ensure_converged().is_ok());
        assert!(out.iterations <= 30);
        assert!(out
            .allocation
            .is_exhaustive(market.resources().capacities(), 1e-9));
        assert_eq!(out.utilities.len(), 2);
        assert!(out.efficiency() > 0.0);
    }

    #[test]
    fn complementary_players_get_their_preferred_resource() {
        let market = two_player_market([0.9, 0.1], [0.1, 0.9]);
        let out = market.equilibrium(&EquilibriumOptions::precise()).unwrap();
        // Player a should end up with most of resource 0, player b with most
        // of resource 1.
        assert!(out.allocation.get(0, 0) > out.allocation.get(1, 0));
        assert!(out.allocation.get(1, 1) > out.allocation.get(0, 1));
    }

    #[test]
    fn symmetric_players_split_evenly() {
        let market = two_player_market([0.5, 0.5], [0.5, 0.5]);
        let out = market.equilibrium(&EquilibriumOptions::precise()).unwrap();
        for j in 0..2 {
            let a = out.allocation.get(0, j);
            let b = out.allocation.get(1, j);
            assert!(
                (a - b).abs() / (a + b) < 0.05,
                "resource {j}: {a} vs {b} not symmetric"
            );
        }
        // Symmetric market ⇒ λs agree ⇒ MUR ≈ 1.
        let (lo, hi) = (
            out.lambdas.iter().cloned().fold(f64::INFINITY, f64::min),
            out.lambdas.iter().cloned().fold(0.0_f64, f64::max),
        );
        assert!(lo / hi > 0.9, "λs {:?}", out.lambdas);
    }

    #[test]
    fn budget_override_shifts_allocation() {
        let market = two_player_market([0.5, 0.5], [0.5, 0.5]);
        let out = market
            .equilibrium_with_budgets(&[150.0, 50.0], &EquilibriumOptions::precise())
            .unwrap();
        // The richer symmetric player gets more of everything.
        assert!(out.allocation.get(0, 0) > out.allocation.get(1, 0));
        assert!(out.allocation.get(0, 1) > out.allocation.get(1, 1));
    }

    #[test]
    fn price_history_recorded_on_request() {
        let market = two_player_market([0.8, 0.2], [0.2, 0.8]);
        let mut opts = EquilibriumOptions::default();
        assert!(market.equilibrium(&opts).unwrap().price_history.is_empty());
        opts.record_history = true;
        let out = market.equilibrium(&opts).unwrap();
        assert_eq!(out.price_history.len() as u64, out.iterations);
        assert_eq!(out.price_history.last().unwrap(), &out.prices);
    }

    #[test]
    fn prices_reflect_contention() {
        // Both players want resource 0 badly; its price should exceed the
        // price of the unloved resource 1 (per unit).
        let market = two_player_market([0.9, 0.1], [0.9, 0.1]);
        let out = market.equilibrium(&EquilibriumOptions::default()).unwrap();
        assert!(out.prices[0] > out.prices[1]);
    }

    #[test]
    fn zero_budget_player_gets_only_free_leftovers() {
        let caps = [16.0, 80.0];
        let resources = ResourceSpace::new(caps.to_vec()).unwrap();
        let market = Market::new(
            resources,
            vec![
                Player::new(
                    "rich",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&[0.5, 0.5], &caps).unwrap()),
                ),
                Player::new(
                    "broke",
                    0.0,
                    Arc::new(SeparableUtility::proportional(&[0.5, 0.5], &caps).unwrap()),
                ),
            ],
        )
        .unwrap();
        let out = market.equilibrium(&EquilibriumOptions::default()).unwrap();
        assert!(out.allocation.get(1, 0) < 1e-9);
        assert!((out.allocation.get(0, 0) - caps[0]).abs() < 1e-9);
    }

    /// A utility that always evaluates NaN — the pathological case the
    /// non-finite guardrails exist for.
    #[derive(Debug)]
    struct NanUtility;
    impl crate::Utility for NanUtility {
        fn value(&self, _r: &[f64]) -> f64 {
            f64::NAN
        }
        fn marginal(&self, _r: &[f64], _j: usize) -> f64 {
            f64::NAN
        }
    }

    #[test]
    fn nan_utility_is_sanitized_not_propagated() {
        let caps = [16.0, 80.0];
        let resources = ResourceSpace::new(caps.to_vec()).unwrap();
        let market = Market::new(
            resources,
            vec![
                Player::new(
                    "sane",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&[0.5, 0.5], &caps).unwrap()),
                ),
                Player::new("broken", 100.0, Arc::new(NanUtility)),
            ],
        )
        .unwrap();
        let out = market.equilibrium(&EquilibriumOptions::default()).unwrap();
        // Everything the caller sees is finite...
        assert!(out.prices.iter().all(|p| p.is_finite()));
        assert!(out.utilities.iter().all(|u| u.is_finite()));
        assert!(out.lambdas.iter().all(|l| l.is_finite()));
        assert!(out.bids.as_slice().iter().all(|b| b.is_finite()));
        assert!(out
            .allocation
            .is_exhaustive(market.resources().capacities(), 1e-9));
        // ...and the repairs are visible in the report.
        assert!(
            out.report
                .recovery
                .iter()
                .any(|a| matches!(a, RecoveryAction::NonFiniteSanitized { .. })),
            "expected sanitization actions, got {:?}",
            out.report.recovery
        );
    }

    #[test]
    fn warm_start_from_converged_outcome_restarts_cheaply() {
        let market = two_player_market([0.8, 0.2], [0.2, 0.8]);
        let opts = EquilibriumOptions::default();
        let cold = market.equilibrium(&opts).unwrap();
        assert!(cold.converged());
        let warm_opts = opts
            .clone()
            .with_warm_start(WarmStart::from_outcome(&cold).shared());
        let warm = market.equilibrium(&warm_opts).unwrap();
        assert!(warm.converged());
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        // Warm solves are deterministic: same seed, same bits.
        let again = market.equilibrium(&warm_opts).unwrap();
        assert_eq!(warm.iterations, again.iterations);
        for (a, b) in warm.prices.iter().zip(&again.prices) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn mismatched_or_poisoned_warm_seed_falls_back_to_cold() {
        let market = two_player_market([0.8, 0.2], [0.2, 0.8]);
        let opts = EquilibriumOptions::default();
        let cold = market.equilibrium(&opts).unwrap();
        // Wrong length: ignored wholesale.
        let short = opts.clone().with_warm_start(
            WarmStart {
                bids: vec![1.0, 2.0, 3.0],
            }
            .shared(),
        );
        // NaN row: that row (and here, every row) cold-starts.
        let poisoned = opts.clone().with_warm_start(
            WarmStart {
                bids: vec![f64::NAN, 1.0, f64::NAN, 1.0],
            }
            .shared(),
        );
        for bad in [short, poisoned] {
            let out = market.equilibrium(&bad).unwrap();
            assert_eq!(out.iterations, cold.iterations);
            for (a, b) in out.prices.iter().zip(&cold.prices) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn warm_seed_rescales_to_changed_budgets() {
        let market = two_player_market([0.5, 0.5], [0.5, 0.5]);
        let opts = EquilibriumOptions::precise();
        let cold = market.equilibrium(&opts).unwrap();
        // Re-solve with shifted budgets, seeded from the old equilibrium:
        // the seed must be rescaled to the new budgets (stay feasible),
        // and the richer player ends up ahead as usual.
        let warm_opts = opts
            .clone()
            .with_warm_start(WarmStart::from_outcome(&cold).shared());
        let out = market
            .equilibrium_with_budgets(&[150.0, 50.0], &warm_opts)
            .unwrap();
        assert!(out.converged());
        for (i, budget) in [150.0, 50.0].iter().enumerate() {
            let spent: f64 = (0..2).map(|j| out.bids.get(i, j)).sum();
            assert!(spent <= budget + 1e-9, "player {i} spent {spent}");
        }
        assert!(out.allocation.get(0, 0) > out.allocation.get(1, 0));
    }

    #[test]
    fn non_convergence_surfaces_typed_error() {
        let report = SolveReport {
            converged: false,
            iterations: 30,
            residual: 0.25,
            recovery: Vec::new(),
            timed_out: false,
        };
        match report.ensure_converged() {
            Err(MarketError::NonConvergence {
                iterations,
                residual,
            }) => {
                assert_eq!(iterations, 30);
                assert!((residual - 0.25).abs() < 1e-12);
            }
            other => panic!("expected NonConvergence, got {other:?}"),
        }
    }
}
