//! Exact best response for separable concave utilities, via water-filling.
//!
//! The paper's bidder (§4.1.2, [`crate::bidding`]) is a fast exponential
//! back-off heuristic. For *separable* concave utilities the optimal bids
//! can instead be computed to arbitrary precision from the KKT conditions
//! of Eq. 3/4: there is a player constant `λ` such that every resource
//! with a positive bid has marginal utility of money exactly `λ`, and
//! total spend equals the budget. Both relations are monotone, so two
//! nested bisections solve the problem. This module exists to *validate*
//! the heuristic (see the `bidder_matches_exact_solution` tests and the
//! bidding ablation), exactly as one would check a hardware-friendly
//! approximation against its mathematical ideal.

use crate::pricing::predicted_share;
use crate::utility::SeparableUtility;

/// λ as a function of the bid on one resource:
/// `λ_j(b) = u_j'(r_j(b)) · y_j C_j / (b + y_j)²` — strictly decreasing in
/// `b` for concave `u_j`.
fn lambda_of_bid(
    utility: &SeparableUtility,
    j: usize,
    bid: f64,
    others: f64,
    capacity: f64,
) -> f64 {
    let r = predicted_share(bid, others, capacity);
    let denom = (bid + others).max(1e-12);
    utility.terms()[j].slope(r) * others * capacity / (denom * denom)
}

/// The bid on resource `j` at which the marginal utility of money equals
/// `lambda` (0 if even the first unit of money is worth less than
/// `lambda`), found by bisection over `[0, budget]`.
fn bid_for_lambda(
    utility: &SeparableUtility,
    j: usize,
    lambda: f64,
    others: f64,
    capacity: f64,
    budget: f64,
) -> f64 {
    if lambda_of_bid(utility, j, 0.0, others, capacity) <= lambda {
        return 0.0;
    }
    if lambda_of_bid(utility, j, budget, others, capacity) >= lambda {
        return budget;
    }
    let (mut lo, mut hi) = (0.0, budget);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if lambda_of_bid(utility, j, mid, others, capacity) > lambda {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Computes the exact utility-maximizing bids for a separable concave
/// utility under a budget, given the other players' bids per resource.
///
/// Returns bids summing to `budget` (all-zero for a zero budget).
///
/// # Examples
///
/// ```
/// use rebudget_market::exact::exact_best_response;
/// use rebudget_market::utility::SeparableUtility;
///
/// # fn main() -> Result<(), rebudget_market::MarketError> {
/// let caps = [16.0, 80.0];
/// let u = SeparableUtility::proportional(&[0.5, 0.5], &caps)?;
/// let bids = exact_best_response(&u, 100.0, &[30.0, 70.0], &caps);
/// assert!((bids.iter().sum::<f64>() - 100.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn exact_best_response(
    utility: &SeparableUtility,
    budget: f64,
    others: &[f64],
    capacities: &[f64],
) -> Vec<f64> {
    let m = capacities.len();
    if budget <= 0.0 || m == 0 {
        return vec![0.0; m];
    }
    // Outer bisection over λ: total spend Σ_j b_j(λ) is decreasing in λ.
    let spend = |lambda: f64| -> f64 {
        (0..m)
            .map(|j| bid_for_lambda(utility, j, lambda, others[j], capacities[j], budget))
            .sum()
    };
    // Bracket λ.
    let mut hi = (0..m)
        .map(|j| lambda_of_bid(utility, j, 0.0, others[j], capacities[j]))
        .fold(0.0_f64, f64::max)
        .max(1e-12);
    let mut lo = 0.0;
    if spend(hi) > budget {
        // Degenerate (shouldn't happen): λ above every initial marginal
        // still can't absorb the budget; spend it proportionally.
        return vec![budget / m as f64; m];
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if spend(mid) > budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let lambda = 0.5 * (lo + hi);
    let mut bids: Vec<f64> = (0..m)
        .map(|j| bid_for_lambda(utility, j, lambda, others[j], capacities[j], budget))
        .collect();
    // Normalize residual bisection error onto the largest bid so the
    // budget is spent exactly.
    let total: f64 = bids.iter().sum();
    if total > 0.0 {
        let scale = budget / total;
        bids.iter_mut().for_each(|b| *b *= scale);
    } else {
        bids = vec![budget / m as f64; m];
    }
    bids
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::bidding::{best_response, BiddingOptions};
    use crate::Utility;

    fn value_at(
        utility: &SeparableUtility,
        bids: &[f64],
        others: &[f64],
        capacities: &[f64],
    ) -> f64 {
        let alloc: Vec<f64> = bids
            .iter()
            .zip(others)
            .zip(capacities)
            .map(|((&b, &y), &c)| predicted_share(b, y, c))
            .collect();
        utility.value(&alloc)
    }

    #[test]
    fn exact_bids_sum_to_budget() {
        let caps = [16.0, 80.0];
        let u = SeparableUtility::proportional(&[0.7, 0.3], &caps).unwrap();
        for budget in [1.0, 37.0, 100.0] {
            let bids = exact_best_response(&u, budget, &[30.0, 50.0], &caps);
            assert!((bids.iter().sum::<f64>() - budget).abs() < 1e-6);
            assert!(bids.iter().all(|&b| b >= 0.0));
        }
    }

    #[test]
    fn lambda_equalized_across_funded_resources() {
        let caps = [16.0, 80.0];
        let u = SeparableUtility::proportional(&[0.6, 0.4], &caps).unwrap();
        let others = [40.0, 25.0];
        let bids = exact_best_response(&u, 100.0, &others, &caps);
        let l0 = lambda_of_bid(&u, 0, bids[0], others[0], caps[0]);
        let l1 = lambda_of_bid(&u, 1, bids[1], others[1], caps[1]);
        assert!(
            (l0 - l1).abs() / l0.max(l1) < 1e-3,
            "λ not equalized: {l0} vs {l1}"
        );
    }

    #[test]
    fn heuristic_bidder_is_near_optimal() {
        // The paper's exponential back-off bidder must land within a small
        // utility gap of the exact KKT solution.
        let caps = [16.0, 80.0];
        let others = [40.0, 25.0];
        for w0 in [0.2, 0.5, 0.8] {
            let u = SeparableUtility::proportional(&[w0, 1.0 - w0], &caps).unwrap();
            let exact = exact_best_response(&u, 100.0, &others, &caps);
            let heur = best_response(&u, 100.0, &others, &caps, &BiddingOptions::default());
            let v_exact = value_at(&u, &exact, &others, &caps);
            let v_heur = value_at(&u, &heur.bids, &others, &caps);
            assert!(
                v_heur >= 0.98 * v_exact,
                "w0={w0}: heuristic {v_heur} vs exact {v_exact}"
            );
        }
    }

    #[test]
    fn worthless_resource_gets_no_money() {
        let caps = [16.0, 80.0];
        let u = SeparableUtility::proportional(&[1.0, 0.0], &caps).unwrap();
        let bids = exact_best_response(&u, 50.0, &[10.0, 10.0], &caps);
        assert!(bids[1] < 1e-6, "bids {bids:?}");
        assert!((bids[0] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn zero_budget_is_all_zero() {
        let caps = [4.0];
        let u = SeparableUtility::proportional(&[1.0], &caps).unwrap();
        assert_eq!(exact_best_response(&u, 0.0, &[1.0], &caps), vec![0.0]);
    }
}
