//! The shared engine behind the first-order solvers.
//!
//! [`crate::proportional_response`], [`crate::mirror_descent`], and the
//! dense reference in [`crate::fisher`] are all multiplicative-weights
//! dynamics with the same outer loop: iterate "players respond to the
//! current per-good money, money is re-totalled" until the relative
//! excess demand ([`crate::residual`]) drops below the tolerance. This
//! module owns that loop — [`drive`] — so residual semantics, deadline
//! accounting, the guardrail set (damping, divergence restart, non-finite
//! sanitization), and the telemetry schema are identical across engines
//! and match the dense Jacobi solver event for event.
//!
//! It also owns the sparse sweep kernel ([`solve_sparse`]): allocation-free
//! in-place updates over the CSR bid values, parallelized over fixed
//! 4096-player blocks with per-block partial column sums reduced serially
//! in block order — so results are bit-identical under every
//! [`crate::ParallelPolicy`], exactly like the dense engine.

use rebudget_telemetry as telemetry;

use crate::equilibrium::{
    push_recovery, EquilibriumOptions, RecoveryAction, SolveReport, DIVERGENCE_FACTOR,
    MAX_RESTARTS, MIN_DAMPING,
};
use crate::par;
use crate::residual::relative_price_gap;
use crate::sparse::{SparseMarket, SparseOutcome, SparseUtilityKind};
use crate::Result;

/// Players per parallel work block. Fixed (independent of the thread
/// count) so the per-block partial sums — and therefore every float in
/// the solve — are a pure function of the market, not of the execution
/// schedule.
pub(crate) const BLOCK_PLAYERS: usize = 4096;

/// What one [`drive`] loop produced: the final bid values, the final
/// per-good money vector, and the usual solve report.
pub(crate) struct FirstOrderRun {
    /// Final bid values, in the same layout the sweep maintained.
    pub(crate) vals: Vec<f64>,
    /// Final per-good money `p̂_j = Σ_i b_ij` (unit price × capacity).
    pub(crate) money: Vec<f64>,
    /// Convergence/guardrail report. The caller appends any
    /// post-processing sanitizations before emitting `solve_end`.
    pub(crate) report: SolveReport,
    /// Per-iteration *unit* price vectors when history is requested.
    pub(crate) price_history: Vec<Vec<f64>>,
}

/// Emits the `solve_start` event (same schema as the dense engine).
pub(crate) fn emit_solve_start(players: usize, resources: usize) {
    if telemetry::enabled() {
        telemetry::record(
            telemetry::Event::new("solve_start")
                .field_u64("players", players as u64)
                .field_u64("resources", resources as u64),
        );
    }
}

/// Emits the `solve_end` event and updates the `solver.*` metrics (same
/// schema and counters as the dense engine).
pub(crate) fn emit_solve_end(report: &SolveReport) {
    if telemetry::enabled() {
        telemetry::record(
            telemetry::Event::new("solve_end")
                .field_u64("iterations", report.iterations)
                .field_bool("converged", report.converged)
                .field_f64("residual", report.residual)
                .field_bool("timed_out", report.timed_out),
        );
        let registry = &telemetry::global().registry;
        registry.counter("solver.solves").incr();
        registry.counter("solver.iterations").add(report.iterations);
        registry
            .counter("solver.recoveries")
            .add(report.recovery.len() as u64);
        if report.timed_out {
            registry.counter("solver.timeouts").incr();
        }
        registry
            .histogram("solver.iterations_per_solve")
            .record(report.iterations);
        registry.gauge("solver.last_residual").set(report.residual);
    }
}

fn unit_prices(money: &[f64], capacities: &[f64]) -> Vec<f64> {
    money.iter().zip(capacities).map(|(p, c)| p / c).collect()
}

/// The first-order outer loop: repeatedly calls `sweep` to update the bid
/// values in place against the current per-good money snapshot, then
/// measures the relative excess demand and applies the shared guardrails.
///
/// `sweep(vals, money, damping, new_money)` must (1) rewrite `vals` as
/// the damped step from the `money` snapshot, (2) fill `new_money` with
/// the per-good sums of the rewritten values using a thread-count-
/// independent accumulation order, and (3) return how many rows it had to
/// sanitize (kept at their previous values because the step went
/// non-finite).
///
/// Guardrail differences from the Jacobi engine, by design:
/// first-order dynamics descend smoothly but can plateau for thousands of
/// iterations, so damping tightens only on a clear regression (residual
/// more than 2× the previous iteration's), not on every non-improving
/// step. Divergence restarts and non-finite handling are identical.
pub(crate) fn drive(
    capacities: &[f64],
    mut vals: Vec<f64>,
    init_money: Vec<f64>,
    options: &EquilibriumOptions,
    mut sweep: impl FnMut(&mut [f64], &[f64], f64, &mut [f64]) -> u64,
) -> FirstOrderRun {
    let m = capacities.len();
    let mut money = init_money;
    let mut new_money = vec![0.0; m];
    let mut iterations: u64 = 0;
    let mut converged = false;
    let mut timed_out = false;
    let mut residual = f64::INFINITY;
    let mut prev_residual = f64::INFINITY;
    let mut best_vals = vals.clone();
    let mut best_money = money.clone();
    let mut best_residual = f64::INFINITY;
    let mut damping = 1.0_f64;
    let mut restarts = 0usize;
    let mut recovery: Vec<RecoveryAction> = Vec::new();
    let mut price_history = Vec::new();
    let mut clock = options.deadline.start();

    while iterations < options.max_iterations as u64 {
        iterations += 1;
        // Deadline accounting mirrors the dense engine: charge up front,
        // apply the verdict after the sweep so at least one iteration
        // always runs and a final-iteration convergence still counts.
        let deadline_hit = clock.charge(1);
        let sanitized = sweep(&mut vals, &money, damping, &mut new_money);
        if sanitized > 0 {
            // One event per iteration (not per row): a poisoned market at
            // 10⁶ players must not grow an unbounded recovery trace.
            push_recovery(
                &mut recovery,
                RecoveryAction::NonFiniteSanitized {
                    iteration: iterations,
                    what: "bid row",
                },
            );
        }
        let fluctuation = relative_price_gap(&money, &new_money);
        std::mem::swap(&mut money, &mut new_money);
        residual = fluctuation;
        if telemetry::enabled() {
            telemetry::record(
                telemetry::Event::new("solver_iteration")
                    .field_u64("iteration", iterations)
                    .field_f64("residual", fluctuation)
                    .field_f64s("prices", &unit_prices(&money, capacities)),
            );
        }
        if options.record_history {
            price_history.push(unit_prices(&money, capacities));
        }
        if fluctuation <= options.price_tolerance {
            converged = true;
            break;
        }
        if deadline_hit || clock.expired() {
            timed_out = true;
            break;
        }
        let diverged = !fluctuation.is_finite()
            || fluctuation > DIVERGENCE_FACTOR * best_residual.max(options.price_tolerance);
        if diverged && restarts < MAX_RESTARTS && best_residual.is_finite() {
            restarts += 1;
            vals.clone_from(&best_vals);
            money.clone_from(&best_money);
            damping = (damping * 0.5).max(MIN_DAMPING);
            push_recovery(
                &mut recovery,
                RecoveryAction::RestartedFromStable {
                    iteration: iterations,
                },
            );
            prev_residual = f64::INFINITY;
            continue;
        }
        if fluctuation > prev_residual * 2.0 && damping > MIN_DAMPING {
            damping = (damping * 0.5).max(MIN_DAMPING);
            push_recovery(
                &mut recovery,
                RecoveryAction::OscillationDamped {
                    iteration: iterations,
                    damping,
                },
            );
        }
        // Snapshot the fallback iterate only on a 2× improvement: cloning
        // the full bid vector every iteration would dominate the sweep at
        // 10⁶ players (the residual improves monotonically on smooth
        // markets). The snapshot therefore lags the true best by at most
        // 2×, which only shifts the divergence-restart threshold and the
        // non-converged fallback slightly — never a converged result.
        if fluctuation.is_finite() && fluctuation < best_residual * 0.5 {
            best_residual = fluctuation;
            best_vals.clone_from(&vals);
            best_money.clone_from(&money);
        }
        prev_residual = fluctuation;
    }

    // Non-converged fail-safe: hand back the lowest-residual stable
    // iterate, exactly like the dense engine.
    if !converged && best_residual < residual {
        vals.clone_from(&best_vals);
        money.clone_from(&best_money);
        residual = best_residual;
        if options.record_history {
            price_history.push(unit_prices(&money, capacities));
        }
    }

    FirstOrderRun {
        vals,
        money,
        report: SolveReport {
            converged,
            iterations,
            residual,
            recovery,
            timed_out,
        },
        price_history,
    }
}

/// One entry's multiplicative step weight. The next bid row is
/// `B_i · w_ij / Σ_j w_ij`:
///
/// * linear, `w = b · (v·C/p̂)^γ` — at γ = 1 this is proportional
///   response (`w` is the utility the entry currently earns); smaller γ
///   is the entropic-mirror-descent damped step. Fixed point: the
///   bang-per-buck `v_j·C_j/p̂_j` is equal across the support — the
///   Eisenberg–Gale first-order condition.
/// * Leontief, `w = b^(1−γ) · (a·p̂/C)^γ` — fixed point `b ∝ a_j·p_j`,
///   the Leontief equilibrium spending profile.
///
/// `ratio` is the per-good factor precomputed by [`good_ratios`] — it
/// carries the division (`C/p̂` or `p̂/C`), so the per-entry hot path is
/// multiply-only. A good nobody funds (`p̂ ≤ 0`) has ratio 0 and gets
/// weight 0: with no money on it the good is free and earns no spend.
/// Multiplicative updates keep funded entries strictly positive, so this
/// only triggers for structurally unfunded goods (all interested players
/// broke).
#[inline]
fn step_weight(kind: SparseUtilityKind, gamma: f64, bid: f64, weight: f64, ratio: f64) -> f64 {
    match kind {
        SparseUtilityKind::Linear => {
            let q = weight * ratio;
            if gamma == 1.0 {
                bid * q
            } else {
                bid * q.powf(gamma)
            }
        }
        SparseUtilityKind::Leontief => {
            let s = weight * ratio;
            if gamma == 1.0 {
                s
            } else {
                bid.powf(1.0 - gamma) * s.powf(gamma)
            }
        }
    }
}

/// Per-good step factor for [`step_weight`], computed once per iteration
/// (`m` divisions instead of `nnz`): linear `C_j/p̂_j`, Leontief `p̂_j/C_j`;
/// 0 for an unfunded good either way.
fn good_ratios(kind: SparseUtilityKind, capacities: &[f64], money: &[f64], out: &mut [f64]) {
    for ((r, &c), &p) in out.iter_mut().zip(capacities).zip(money) {
        *r = if p > 0.0 {
            match kind {
                SparseUtilityKind::Linear => c / p,
                SparseUtilityKind::Leontief => p / c,
            }
        } else {
            0.0
        };
    }
}

/// Solves a sparse market with the multiplicative dynamics at step `γ`
/// (γ = 1 is proportional response; γ < 1 is mirror descent).
///
/// Per iteration this makes two passes over each player's own CSR row
/// (one to total the step weights, one to write the damped step and
/// accumulate the block's partial column sums) — `O(nnz)` work, zero
/// allocation, and bit-identical results under every thread count.
pub(crate) fn solve_sparse(
    market: &SparseMarket,
    options: &EquilibriumOptions,
    gamma: f64,
) -> Result<SparseOutcome> {
    let n = market.players();
    let m = market.resources();
    let capacities = market.capacities();
    let budgets = market.budgets();
    let interests = market.interests();
    let row_ptr = interests.row_ptr();
    let cols = interests.cols();
    let weights = interests.vals();
    let kind = market.kind();

    let _solve_span = telemetry::span!("solve");
    emit_solve_start(n, m);

    // Initial bids: each player's budget split equally over its interest
    // set — strictly positive everywhere, which multiplicative updates
    // preserve (a zero bid can never revive, so never start at zero).
    // (A value-proportional warm start was tried and saves ~1 iteration:
    // the cost is the slow geometric tail, not the initial transient.)
    let mut vals = vec![0.0; interests.nnz()];
    for i in 0..n {
        let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
        if hi > lo {
            vals[lo..hi].fill(budgets[i] / (hi - lo) as f64);
        }
    }
    // Warm start: overlay usable seed rows (CSR value layout) over the
    // equal split, rescaled to each player's current budget. Exact-zero
    // seed entries (underflow in the previous converged run) are lifted
    // to a tiny positive floor — a zero can never revive under the
    // multiplicative step; unusable rows keep the cold start.
    if let Some(warm) = options.warm_start.as_deref() {
        if warm.bids.len() == vals.len() {
            for i in 0..n {
                let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
                crate::equilibrium::warm_overlay_multiplicative(
                    &mut vals[lo..hi],
                    &warm.bids[lo..hi],
                    budgets[i],
                );
            }
        }
    }
    let mut init_money = vec![0.0; m];
    for (&c, &b) in cols.iter().zip(&vals) {
        init_money[c as usize] += b;
    }

    // Fixed player blocks: the parallel unit of work. `block_ptr[b]` is
    // the CSR value offset where block `b` begins; per-block scratch
    // carries `m` partial column sums plus a sanitized-row count.
    let blocks = n.div_ceil(BLOCK_PLAYERS);
    let block_ptr: Vec<usize> = (0..=blocks)
        .map(|b| row_ptr[(b * BLOCK_PLAYERS).min(n)])
        .collect();
    let stride = m + 1;
    let mut aux = vec![0.0; blocks * stride];
    // Persistent per-good step factors: recomputed serially each sweep
    // (m divisions), shared read-only by every block.
    let mut ratios = vec![0.0; m];
    // Blocks are coarse work items (thousands of players each), so even a
    // fan-out of 2 amortizes thread cost.
    let threads = options.parallel.resolved_threads_coarse(blocks);

    let mut run = drive(
        capacities,
        vals,
        init_money,
        options,
        |vals, money, damping, new_money| {
            good_ratios(kind, capacities, money, &mut ratios);
            let ratios = &ratios;
            par::for_each_block(
                threads,
                vals,
                &block_ptr,
                &mut aux,
                stride,
                |b, band, aux| {
                    aux.fill(0.0);
                    let p_lo = (b * BLOCK_PLAYERS).min(n);
                    let p_hi = ((b + 1) * BLOCK_PLAYERS).min(n);
                    let base = row_ptr[p_lo];
                    for i in p_lo..p_hi {
                        let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
                        let row = &mut band[lo - base..hi - base];
                        let row_cols = &cols[lo..hi];
                        let row_weights = &weights[lo..hi];
                        // Pass 1: total the step weights from the old row.
                        let mut w_sum = 0.0;
                        for ((&b, &c), &w) in row.iter().zip(row_cols).zip(row_weights) {
                            w_sum += step_weight(kind, gamma, b, w, ratios[c as usize]);
                        }
                        if !w_sum.is_finite() {
                            // Keep the old row; it still carries money.
                            aux[m] += 1.0;
                            for (&b, &c) in row.iter().zip(row_cols) {
                                aux[c as usize] += b;
                            }
                            continue;
                        }
                        if w_sum <= 0.0 {
                            // No positive step weight (zero budget or all
                            // goods unfunded): keep the old row silently.
                            for (&b, &c) in row.iter().zip(row_cols) {
                                aux[c as usize] += b;
                            }
                            continue;
                        }
                        // Pass 2: write the damped step and accumulate
                        // this block's partial column sums.
                        let scale = budgets[i] / w_sum;
                        for ((b, &c), &w) in row.iter_mut().zip(row_cols).zip(row_weights) {
                            let c = c as usize;
                            let target = scale * step_weight(kind, gamma, *b, w, ratios[c]);
                            let next = if damping < 1.0 {
                                (1.0 - damping) * *b + damping * target
                            } else {
                                target
                            };
                            *b = next;
                            aux[c] += next;
                        }
                    }
                },
            );
            // Serial reduce in block order: deterministic for any thread
            // count because the blocks themselves are fixed.
            new_money.fill(0.0);
            let mut sanitized = 0u64;
            for chunk in aux.chunks_exact(stride) {
                for (sum, &part) in new_money.iter_mut().zip(chunk) {
                    *sum += part;
                }
                sanitized += chunk[m] as u64;
            }
            sanitized
        },
    );

    // Final utilities at the proportional allocation `x_ij = b_ij·C_j/p̂_j`.
    let mut utilities = vec![0.0; n];
    let mut bad_utilities = false;
    for (i, u) in utilities.iter_mut().enumerate() {
        let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
        let mut value = match kind {
            SparseUtilityKind::Linear => 0.0,
            SparseUtilityKind::Leontief => {
                if hi > lo {
                    f64::INFINITY
                } else {
                    0.0
                }
            }
        };
        for k in lo..hi {
            let c = cols[k] as usize;
            let p = run.money[c];
            let x = if p > 0.0 {
                run.vals[k] * capacities[c] / p
            } else {
                0.0
            };
            match kind {
                SparseUtilityKind::Linear => value += weights[k] * x,
                SparseUtilityKind::Leontief => value = value.min(x / weights[k]),
            }
        }
        if !value.is_finite() {
            value = 0.0;
            bad_utilities = true;
        }
        *u = value;
    }
    if bad_utilities {
        push_recovery(
            &mut run.report.recovery,
            RecoveryAction::NonFiniteSanitized {
                iteration: run.report.iterations,
                what: "utility",
            },
        );
    }

    emit_solve_end(&run.report);
    let prices = unit_prices(&run.money, capacities);
    Ok(SparseOutcome {
        bids: interests.with_vals(run.vals),
        prices,
        utilities,
        iterations: run.report.iterations,
        report: run.report,
        price_history: run.price_history,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::sparse::{SparseBids, SynthSpec};
    use crate::ParallelPolicy;

    fn tight() -> EquilibriumOptions {
        let mut opts = EquilibriumOptions::large_scale();
        opts.max_iterations = 100_000;
        opts.price_tolerance = 1e-10;
        opts
    }

    fn linear_market(
        capacities: Vec<f64>,
        budgets: Vec<f64>,
        rows: Vec<Vec<(usize, f64)>>,
    ) -> SparseMarket {
        let m = capacities.len();
        let interests = SparseBids::from_rows(m, rows).unwrap();
        SparseMarket::new(capacities, budgets, interests, SparseUtilityKind::Linear).unwrap()
    }

    #[test]
    fn complementary_linear_market_hits_known_equilibrium() {
        // v₁ = (3,1), v₂ = (1,2), B = (1,1), C = (1,1): each player spends
        // everything on its favorite good, so p = (1,1), u₁ = 3, u₂ = 2.
        // (Deliberately asymmetric: on a perfectly symmetric instance the
        // aggregate money vector is stationary while bids still move, so
        // the price residual would stop the solve early.)
        let market = linear_market(
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![vec![(0, 3.0), (1, 1.0)], vec![(0, 1.0), (1, 2.0)]],
        );
        let out = solve_sparse(&market, &tight(), 1.0).unwrap();
        assert!(out.converged(), "residual {}", out.report.residual);
        assert!((out.prices[0] - 1.0).abs() < 1e-6, "{:?}", out.prices);
        assert!((out.prices[1] - 1.0).abs() < 1e-6, "{:?}", out.prices);
        assert!((out.utilities[0] - 3.0).abs() < 1e-6, "{:?}", out.utilities);
        assert!((out.utilities[1] - 2.0).abs() < 1e-6, "{:?}", out.utilities);
    }

    #[test]
    fn budgets_set_prices_on_a_single_contested_good() {
        // Both players only want good 0: its price is the total budget and
        // shares are proportional to budgets.
        let market = linear_market(
            vec![1.0, 1.0],
            vec![3.0, 1.0],
            vec![vec![(0, 1.0)], vec![(0, 1.0), (1, 1.0)]],
        );
        let out = solve_sparse(&market, &tight(), 1.0).unwrap();
        assert!(out.converged());
        let alloc0 = out.allocation_of(0);
        assert_eq!(alloc0[0].0, 0);
        // Player 1 splits between the contested good and the free-for-it
        // good 1; player 0's share of good 0 exceeds 3/4 of nothing-else
        // competition... just assert market clearing instead.
        let money: f64 = out.prices.iter().sum::<f64>();
        assert!((money - 4.0).abs() < 1e-6, "prices {:?}", out.prices);
    }

    #[test]
    fn leontief_symmetric_market_splits_evenly() {
        // Identical Leontief players: for them the γ = 1 step depends only
        // on prices (not on own bids), so the symmetric fixed point is
        // reached exactly and the even split is the equilibrium.
        let interests =
            SparseBids::from_rows(2, vec![vec![(0, 1.0), (1, 1.0)], vec![(0, 1.0), (1, 1.0)]])
                .unwrap();
        let market = SparseMarket::new(
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            interests,
            SparseUtilityKind::Leontief,
        )
        .unwrap();
        let out = solve_sparse(&market, &tight(), 1.0).unwrap();
        assert!(out.converged());
        for (_, x) in out.allocation_of(0) {
            assert!((x - 0.5).abs() < 1e-6);
        }
        assert!((out.utilities[0] - 0.5).abs() < 1e-6);
        assert!((out.utilities[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn leontief_fixed_point_spends_proportionally_to_prices() {
        // a₁ = (1, 2): at equilibrium b₁ ∝ (p₀, 2·p₁).
        let interests =
            SparseBids::from_rows(2, vec![vec![(0, 1.0), (1, 2.0)], vec![(0, 1.0), (1, 1.0)]])
                .unwrap();
        let market = SparseMarket::new(
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            interests,
            SparseUtilityKind::Leontief,
        )
        .unwrap();
        let out = solve_sparse(&market, &tight(), 0.7).unwrap();
        assert!(out.converged());
        let b = out.bids.row_vals(0);
        let expected = [out.prices[0], 2.0 * out.prices[1]];
        let ratio = b[0] / b[1];
        let expected_ratio = expected[0] / expected[1];
        assert!(
            (ratio - expected_ratio).abs() < 1e-5,
            "bids {b:?} vs prices {:?}",
            out.prices
        );
    }

    #[test]
    fn gamma_one_mirror_is_bitwise_proportional_response() {
        let market = SynthSpec::new(200, 8, 11).generate().unwrap();
        let pr = solve_sparse(&market, &tight(), 1.0).unwrap();
        let md = solve_sparse(&market, &tight(), 1.0).unwrap();
        assert_eq!(pr.prices, md.prices);
        assert_eq!(pr.bids, md.bids);
    }

    #[test]
    fn results_are_bit_identical_under_every_policy() {
        // Enough players for several blocks once BLOCK_PLAYERS is exceeded
        // would be slow in a unit test; instead check Serial vs Threads on
        // a market that still spans multiple blocks cheaply via a small
        // block count (n > BLOCK_PLAYERS ⇒ ≥ 2 blocks).
        let market = SynthSpec::new(2 * BLOCK_PLAYERS + 123, 16, 5)
            .generate()
            .unwrap();
        let mut opts = EquilibriumOptions::large_scale();
        opts.max_iterations = 50;
        opts.price_tolerance = 0.0; // run all 50 iterations
        let solve = |policy: ParallelPolicy| {
            let mut o = opts.clone();
            o.parallel = policy;
            solve_sparse(&market, &o, 1.0).unwrap()
        };
        let serial = solve(ParallelPolicy::Serial);
        let threaded = solve(ParallelPolicy::Threads(4));
        let auto = solve(ParallelPolicy::Auto);
        assert!(serial
            .bids
            .vals()
            .iter()
            .zip(threaded.bids.vals())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(serial
            .prices
            .iter()
            .zip(&auto.prices)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(serial.report, threaded.report);
    }

    #[test]
    fn deadline_budget_is_honored() {
        let market = SynthSpec::new(500, 8, 2).generate().unwrap();
        let mut opts = EquilibriumOptions::large_scale();
        opts.price_tolerance = 0.0; // unreachable
        opts.deadline = crate::DeadlineBudget {
            wall_clock: None,
            max_iterations: Some(7),
        };
        let out = solve_sparse(&market, &opts, 1.0).unwrap();
        assert!(out.report.timed_out);
        assert!(out.iterations <= 8, "ran {}", out.iterations);
        assert!(out.report.ensure_within_deadline().is_err());
    }

    #[test]
    fn history_is_recorded_on_request() {
        let market = SynthSpec::new(100, 8, 3).generate().unwrap();
        let mut opts = tight();
        opts.record_history = true;
        let out = solve_sparse(&market, &opts, 1.0).unwrap();
        assert_eq!(out.price_history.len() as u64, out.iterations);
        assert_eq!(out.price_history.last().unwrap(), &out.prices);
    }

    #[test]
    fn budgets_are_conserved_by_the_update() {
        // Conservation holds at every iterate, so the default large-scale
        // tolerance is enough here.
        let market = SynthSpec::new(300, 12, 9).generate().unwrap();
        let out = solve_sparse(&market, &EquilibriumOptions::large_scale(), 1.0).unwrap();
        for i in 0..market.players() {
            let spent: f64 = out.bids.row_vals(i).iter().sum();
            assert!(
                (spent - market.budgets()[i]).abs() < 1e-9,
                "player {i}: spent {spent} of {}",
                market.budgets()[i]
            );
        }
        // Market clearing: money on each good equals its column sum.
        let sums = out.bids.column_sums();
        for (j, (&p, &c)) in out.prices.iter().zip(market.capacities()).enumerate() {
            assert!(
                (p * c - sums[j]).abs() < 1e-9 * sums[j].max(1.0),
                "good {j}"
            );
        }
    }

    #[test]
    fn sparse_warm_start_converges_in_fewer_iterations() {
        use crate::equilibrium::WarmStart;
        let market = SynthSpec::new(2_000, 32, 17).generate().unwrap();
        let opts = EquilibriumOptions::large_scale();
        let cold = solve_sparse(&market, &opts, 1.0).unwrap();
        assert!(cold.converged());
        let warm_opts = opts
            .clone()
            .with_warm_start(WarmStart::from_sparse(&cold).shared());
        let warm = solve_sparse(&market, &warm_opts, 1.0).unwrap();
        assert!(warm.converged());
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        // And it is deterministic: bit-identical across repeats.
        let again = solve_sparse(&market, &warm_opts, 1.0).unwrap();
        assert_eq!(warm.prices, again.prices);
        assert_eq!(warm.bids, again.bids);
    }

    #[test]
    fn sparse_warm_rows_with_zeros_are_lifted() {
        use crate::equilibrium::WarmStart;
        // A zero entry would be frozen forever by the multiplicative
        // step, so it is lifted to a tiny positive floor rather than
        // discarding the whole row (a converged run underflows most
        // rows' unattractive bids to exact 0.0, and rejecting them all
        // would forfeit the warm start). The seeded solve must still
        // converge to the same equilibrium.
        let market = linear_market(
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![vec![(0, 3.0), (1, 1.0)], vec![(0, 1.0), (1, 2.0)]],
        );
        let opts = tight();
        let cold = solve_sparse(&market, &opts, 1.0).unwrap();
        let seeded = opts.clone().with_warm_start(
            WarmStart {
                bids: vec![0.0, 1.0, 0.5, 0.5],
            }
            .shared(),
        );
        let out = solve_sparse(&market, &seeded, 1.0).unwrap();
        assert!(out.converged());
        for (w, c) in out.prices.iter().zip(&cold.prices) {
            assert!((w - c).abs() < 1e-4, "warm {w} vs cold {c}");
        }
    }

    #[test]
    fn sparse_warm_rows_with_negatives_cold_start() {
        use crate::equilibrium::WarmStart;
        // Negative or non-finite seed entries are not liftable: the row
        // falls back to the equal split, which reproduces the cold solve
        // bitwise (player 1's strictly positive seed *is* the equal
        // split here).
        let market = linear_market(
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![vec![(0, 3.0), (1, 1.0)], vec![(0, 1.0), (1, 2.0)]],
        );
        let opts = tight();
        let cold = solve_sparse(&market, &opts, 1.0).unwrap();
        let seeded = opts.clone().with_warm_start(
            WarmStart {
                bids: vec![-0.5, 1.5, 0.5, 0.5],
            }
            .shared(),
        );
        let out = solve_sparse(&market, &seeded, 1.0).unwrap();
        assert_eq!(out.prices, cold.prices);
        assert_eq!(out.bids, cold.bids);
    }

    #[test]
    fn zero_budget_player_keeps_zero_bids() {
        let market = linear_market(
            vec![1.0],
            vec![1.0, 0.0],
            vec![vec![(0, 1.0)], vec![(0, 1.0)]],
        );
        let out = solve_sparse(&market, &tight(), 1.0).unwrap();
        assert!(out.converged());
        assert_eq!(out.bids.row_vals(1), &[0.0]);
        assert!((out.prices[0] - 1.0).abs() < 1e-9);
        assert!(out.report.is_clean());
    }
}
