#![warn(missing_docs)]

//! Budget-constrained proportional-bid market framework.
//!
//! This crate implements the market substrate that the ReBudget paper
//! (Wang & Martínez, ASPLOS 2016) builds on — the XChange-style dynamic
//! proportional market of §2 of the paper:
//!
//! * a market of `N` players and `M` divisible resources ([`Market`],
//!   [`ResourceSpace`], [`Player`]);
//! * concave, non-decreasing, continuous utility models ([`Utility`] and the
//!   implementations in [`utility`]);
//! * proportional pricing: `p_j = Σ_i b_ij / C_j`, with each player receiving
//!   `r_ij = b_ij / p_j` (Eq. 1 of the paper; see [`pricing`]);
//! * the per-player budget-constrained hill-climbing bidder of §4.1.2
//!   ([`bidding`]);
//! * the iterative bidding–pricing equilibrium search of §2.1, with the 1%
//!   price-fluctuation convergence test and the 30-iteration fail-safe of
//!   §6.4 ([`equilibrium`]);
//! * the efficiency/fairness metrics of §2.2–§2.3 and §3: system efficiency,
//!   envy-freeness, per-player marginal utilities `λ_i`, and the paper's two
//!   new metrics **MUR** (Market Utility Range) and **MBR** (Market Budget
//!   Range) ([`metrics`]);
//! * a `MaxEfficiency` oracle that maximizes social welfare directly via
//!   fine-grained exchange hill climbing over concave utilities ([`optimal`]).
//!
//! # Quick example
//!
//! ```
//! use std::sync::Arc;
//! use rebudget_market::{Market, Player, ResourceSpace};
//! use rebudget_market::utility::SeparableUtility;
//! use rebudget_market::equilibrium::EquilibriumOptions;
//!
//! # fn main() -> Result<(), rebudget_market::MarketError> {
//! // Two resources with capacities 16 and 80.
//! let resources = ResourceSpace::new(vec![16.0, 80.0])?;
//!
//! // Two players with different concave tastes and equal budgets.
//! let a = Player::new(
//!     "a",
//!     100.0,
//!     Arc::new(SeparableUtility::proportional(&[0.8, 0.2], &[16.0, 80.0])?),
//! );
//! let b = Player::new(
//!     "b",
//!     100.0,
//!     Arc::new(SeparableUtility::proportional(&[0.3, 0.7], &[16.0, 80.0])?),
//! );
//!
//! let market = Market::new(resources, vec![a, b])?;
//! let outcome = market.equilibrium(&EquilibriumOptions::default())?;
//! assert!(outcome.converged());
//! assert!(outcome.report.is_clean());
//! // Proportional allocation always hands out the full capacity.
//! let total: f64 = (0..2).map(|i| outcome.allocation.get(i, 0)).sum();
//! assert!((total - 16.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

pub mod agents;
pub mod allocation;
pub mod bidding;
pub mod bids;
pub mod deadline;
pub mod equilibrium;
mod error;
pub mod exact;
pub mod faults;
mod first_order;
pub mod fisher;
pub mod fit;
pub mod metrics;
pub mod mirror_descent;
pub mod optimal;
pub mod par;
pub mod player;
pub mod pricing;
pub mod proportional_response;
pub mod residual;
pub mod resource;
pub mod sparse;
pub mod utility;

pub use allocation::AllocationMatrix;
pub use bids::BidMatrix;
pub use deadline::{
    solve_sparse_with_retry, solve_with_retry, DeadlineBudget, RetryPolicy, RetryReport,
};
pub use equilibrium::{RecoveryAction, SolveReport, SolverKind, WarmStart};
pub use error::MarketError;
pub use faults::{FaultPlan, FaultedMarket};
pub use par::ParallelPolicy;
pub use player::{Market, Player};
pub use resource::ResourceSpace;
pub use sparse::{SparseBids, SparseMarket, SparseOutcome, SparseUtilityKind, SynthSpec};
pub use utility::Utility;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MarketError>;
