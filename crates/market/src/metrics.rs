//! Efficiency and fairness metrics (§2.2, §2.3, §3 of the paper).
//!
//! * [`efficiency`] — social welfare, Definition 1.
//! * [`envy_freeness`] — Definition 3; a value ≥ 1 means the allocation is
//!   envy-free.
//! * [`mur`] — **Market Utility Range**, Definition 5: the ratio of the
//!   smallest to the largest per-player marginal utility of money `λ_i`.
//! * [`mbr`] — **Market Budget Range**, Definition 6: the ratio of the
//!   smallest to the largest budget.
//! * [`price_of_anarchy`] — the observed `Nash/OPT` ratio given an optimal
//!   efficiency (Definition 2 is the worst case over equilibria; with one
//!   observed equilibrium this is an upper estimate of the true PoA and is
//!   what the paper's Figures 4–5 plot).

use crate::{AllocationMatrix, Market};

/// System efficiency (social welfare): `Σ_i U_i(r_i)` (Definition 1).
///
/// With normalized-IPC utilities this is *weighted speedup* (Eq. 5).
/// Non-finite utility evaluations (faulted telemetry) contribute zero
/// rather than poisoning the sum.
pub fn efficiency(market: &Market, allocation: &AllocationMatrix) -> f64 {
    market
        .players()
        .iter()
        .enumerate()
        .map(|(i, p)| p.utility_of(allocation.row(i)))
        .filter(|u| u.is_finite())
        .sum()
}

/// Envy-freeness of an allocation (Definition 3):
/// `EF(r) = min_{i,j} U_i(r_i) / U_i(r_j)`.
///
/// Pairs where player `i` assigns zero utility to player `j`'s bundle are
/// skipped (no envy toward a worthless bundle); if player `i`'s own bundle
/// is worthless while it values some other bundle, the ratio is 0. Returns
/// `f64::INFINITY` for a single-player market (nothing to envy).
///
/// Non-finite utility evaluations (faulted telemetry) are treated as
/// worthless: a NaN own-bundle reading counts as 0, a NaN other-bundle
/// reading is skipped — the metric never returns NaN.
pub fn envy_freeness(market: &Market, allocation: &AllocationMatrix) -> f64 {
    let n = market.len();
    if n <= 1 {
        return f64::INFINITY;
    }
    let mut worst = f64::INFINITY;
    for (i, p) in market.players().iter().enumerate() {
        let own = p.utility_of(allocation.row(i));
        let own = if own.is_finite() { own } else { 0.0 };
        for j in 0..n {
            if i == j {
                continue;
            }
            let theirs = p.utility_of(allocation.row(j));
            if !theirs.is_finite() || theirs <= 0.0 {
                continue;
            }
            worst = worst.min(own / theirs);
        }
    }
    worst
}

/// Market Utility Range (Definition 5): `MUR = min_i λ_i / max_i λ_i`.
///
/// Returns 1.0 when all `λ_i` are zero (a degenerate but perfectly "even"
/// market) and clamps to `[0, 1]`.
///
/// ```
/// use rebudget_market::metrics::mur;
/// assert_eq!(mur(&[0.4, 1.0, 0.8]), 0.4);
/// assert_eq!(mur(&[2.0, 2.0]), 1.0);
/// ```
pub fn mur(lambdas: &[f64]) -> f64 {
    range_ratio(lambdas)
}

/// Market Budget Range (Definition 6): `MBR = min_i B_i / max_i B_i`.
///
/// Lower values mean a wider budget spread; `MBR = 1` is an equal-budget
/// market. Clamped to `[0, 1]`.
///
/// ```
/// use rebudget_market::metrics::mbr;
/// assert_eq!(mbr(&[100.0, 61.25, 80.0]), 0.6125);
/// ```
pub fn mbr(budgets: &[f64]) -> f64 {
    range_ratio(budgets)
}

fn range_ratio(values: &[f64]) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !hi.is_finite() || hi <= 0.0 {
        return 1.0;
    }
    (lo / hi).clamp(0.0, 1.0)
}

/// The observed efficiency ratio of an equilibrium against the optimum:
/// `Nash(rⁿ) / OPT` (cf. Definition 2).
///
/// Returns 1.0 when `optimal` is zero (an empty market is trivially
/// optimal).
pub fn price_of_anarchy(equilibrium_efficiency: f64, optimal_efficiency: f64) -> f64 {
    if optimal_efficiency <= 0.0 {
        1.0
    } else {
        equilibrium_efficiency / optimal_efficiency
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::utility::LinearUtility;
    use crate::{Player, ResourceSpace};
    use std::sync::Arc;

    fn market_with_weights(weights: Vec<Vec<f64>>, caps: Vec<f64>) -> Market {
        let resources = ResourceSpace::new(caps).unwrap();
        let players = weights
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                Player::new(
                    format!("p{i}"),
                    100.0,
                    Arc::new(LinearUtility::new(w).unwrap()) as Arc<dyn crate::Utility>,
                )
            })
            .collect();
        Market::new(resources, players).unwrap()
    }

    #[test]
    fn efficiency_sums_utilities() {
        let market = market_with_weights(vec![vec![1.0, 0.0], vec![0.0, 2.0]], vec![4.0, 4.0]);
        let mut alloc = AllocationMatrix::zeros(2, 2).unwrap();
        alloc.set_row(0, &[4.0, 0.0]);
        alloc.set_row(1, &[0.0, 4.0]);
        assert_eq!(efficiency(&market, &alloc), 4.0 + 8.0);
    }

    #[test]
    fn envy_free_when_each_gets_preferred() {
        let market = market_with_weights(vec![vec![1.0, 0.0], vec![0.0, 1.0]], vec![4.0, 4.0]);
        let mut alloc = AllocationMatrix::zeros(2, 2).unwrap();
        alloc.set_row(0, &[4.0, 0.0]);
        alloc.set_row(1, &[0.0, 4.0]);
        // Each player values the other's bundle at 0 → skipped → no envy.
        assert_eq!(envy_freeness(&market, &alloc), f64::INFINITY);
    }

    #[test]
    fn envy_detected_for_starved_player() {
        let market = market_with_weights(vec![vec![1.0], vec![1.0]], vec![4.0]);
        let mut alloc = AllocationMatrix::zeros(2, 1).unwrap();
        alloc.set_row(0, &[3.0]);
        alloc.set_row(1, &[1.0]);
        // Player 1 envies player 0: 1/3.
        assert!((envy_freeness(&market, &alloc) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn envy_zero_for_player_with_worthless_bundle() {
        let market = market_with_weights(vec![vec![1.0], vec![1.0]], vec![4.0]);
        let mut alloc = AllocationMatrix::zeros(2, 1).unwrap();
        alloc.set_row(0, &[4.0]);
        alloc.set_row(1, &[0.0]);
        assert_eq!(envy_freeness(&market, &alloc), 0.0);
    }

    #[test]
    fn mur_and_mbr_behave() {
        assert_eq!(mur(&[1.0, 1.0, 1.0]), 1.0);
        assert_eq!(mur(&[0.5, 1.0]), 0.5);
        assert_eq!(mur(&[0.0, 0.0]), 1.0);
        assert_eq!(mbr(&[100.0, 60.0, 80.0]), 0.6);
        assert_eq!(mbr(&[100.0]), 1.0);
    }

    #[test]
    fn poa_ratio() {
        assert_eq!(price_of_anarchy(8.0, 10.0), 0.8);
        assert_eq!(price_of_anarchy(5.0, 0.0), 1.0);
    }
}
