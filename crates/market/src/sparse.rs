//! Sparse bid storage and synthetic large markets.
//!
//! The paper's chip markets are dense — every core bids on both shared
//! resources — but the ROADMAP's production-scale markets are not: with
//! `10⁵`–`10⁶` players over tens of resources, most players care about a
//! handful of goods. [`SparseBids`] stores only the nonzero
//! (player, resource) interests in CSR form (row pointers + column
//! indices + values, structure-of-arrays), so the first-order solvers in
//! [`crate::proportional_response`] and [`crate::mirror_descent`] run in
//! time linear in the number of interests per iteration instead of
//! `O(N·M)`.
//!
//! [`SparseMarket`] bundles the interest matrix with capacities, budgets,
//! and a utility family ([`SparseUtilityKind`]); [`SynthSpec`] generates
//! reproducible synthetic markets with power-law sparsity (a few very
//! popular resources, a long tail of niche ones; most players with few
//! interests, a few with many) for the scalability benchmarks.
//!
//! Everything here is deterministic: generation is a pure function of the
//! seed (SplitMix64 streams, the same discipline as [`crate::faults`]),
//! and solves are bit-identical under every [`crate::ParallelPolicy`].

use crate::equilibrium::{EquilibriumOptions, SolveReport, SolverKind};
use crate::faults::splitmix;
use crate::utility::LinearUtility;
use crate::{Market, MarketError, Player, ResourceSpace, Result};
use std::sync::Arc;

/// A CSR-style sparse matrix of per-(player, resource) values: the
/// interest weights of a [`SparseMarket`], or the bids of a
/// [`SparseOutcome`].
///
/// Rows are players, columns are resources; each row's column indices are
/// strictly increasing. Values are stored in one flat array so solvers
/// can sweep the whole matrix cache-linearly.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseBids {
    n: usize,
    m: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes player `i`'s entries.
    row_ptr: Vec<usize>,
    /// Column (resource) index of each entry.
    cols: Vec<u32>,
    /// Value of each entry.
    vals: Vec<f64>,
}

impl SparseBids {
    /// Builds a sparse matrix from per-player entry lists. Each row is
    /// sorted by column; duplicate columns within a row are rejected.
    ///
    /// # Errors
    ///
    /// [`MarketError::Empty`] for zero players/resources,
    /// [`MarketError::InvalidValue`] for an out-of-range column, a
    /// duplicate column, or a non-finite/negative value.
    pub fn from_rows(resources: usize, rows: Vec<Vec<(usize, f64)>>) -> Result<Self> {
        if rows.is_empty() {
            return Err(MarketError::Empty { what: "players" });
        }
        if resources == 0 {
            return Err(MarketError::Empty { what: "resources" });
        }
        if resources > u32::MAX as usize {
            return Err(MarketError::InvalidValue {
                what: "resource count",
                value: resources as f64,
            });
        }
        let n = rows.len();
        let nnz: usize = rows.iter().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for mut row in rows {
            row.sort_by_key(|&(c, _)| c);
            for &(c, v) in &row {
                if c >= resources {
                    return Err(MarketError::InvalidValue {
                        what: "resource index",
                        value: c as f64,
                    });
                }
                if cols.len() > *row_ptr.last().unwrap_or(&0) && cols.last() == Some(&(c as u32)) {
                    return Err(MarketError::InvalidValue {
                        what: "duplicate resource index",
                        value: c as f64,
                    });
                }
                if !v.is_finite() || v < 0.0 {
                    return Err(MarketError::InvalidValue {
                        what: "sparse entry",
                        value: v,
                    });
                }
                cols.push(c as u32);
                vals.push(v);
            }
            row_ptr.push(cols.len());
        }
        Ok(Self {
            n,
            m: resources,
            row_ptr,
            cols,
            vals,
        })
    }

    /// Number of players (rows).
    pub fn players(&self) -> usize {
        self.n
    }

    /// Number of resources (columns).
    pub fn resources(&self) -> usize {
        self.m
    }

    /// Number of stored (player, resource) entries.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Row pointers (`players() + 1` entries; `row_ptr[i]..row_ptr[i+1]`
    /// is player `i`'s slice of [`SparseBids::cols`]/[`SparseBids::vals`]).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, row-major.
    pub fn cols(&self) -> &[u32] {
        &self.cols
    }

    /// Entry values, row-major.
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Player `i`'s column indices.
    pub fn row_cols(&self, i: usize) -> &[u32] {
        &self.cols[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Player `i`'s entry values.
    pub fn row_vals(&self, i: usize) -> &[f64] {
        &self.vals[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// A copy of this matrix's structure carrying `vals` as its values
    /// (used by solvers to return bids over the interest structure).
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != self.nnz()` — an internal-use invariant.
    pub(crate) fn with_vals(&self, vals: Vec<f64>) -> Self {
        assert_eq!(vals.len(), self.nnz(), "structure/value length mismatch");
        Self {
            n: self.n,
            m: self.m,
            row_ptr: self.row_ptr.clone(),
            cols: self.cols.clone(),
            vals,
        }
    }

    /// Per-column sums (serial; for tests and small matrices — the
    /// solvers use the deterministic blocked reduction instead).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.m];
        for (&c, &v) in self.cols.iter().zip(&self.vals) {
            sums[c as usize] += v;
        }
        sums
    }

    /// Densifies into a [`crate::BidMatrix`] (small markets only: the
    /// cross-validation suite compares sparse solvers against the dense
    /// reference this way).
    ///
    /// # Errors
    ///
    /// Propagates the dense matrix's dimension validation.
    pub fn to_dense(&self) -> Result<crate::BidMatrix> {
        let mut dense = crate::BidMatrix::zeros(self.n, self.m)?;
        for i in 0..self.n {
            for (&c, &v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                dense.set(i, c as usize, v);
            }
        }
        Ok(dense)
    }
}

/// The utility family a [`SparseMarket`]'s interest weights describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SparseUtilityKind {
    /// Linear utilities: `U_i(x) = Σ_j v_ij·x_ij` over the interest set.
    #[default]
    Linear,
    /// Leontief (perfect-complement) utilities:
    /// `U_i(x) = min_j x_ij / a_ij` over the interest set.
    Leontief,
}

impl SparseUtilityKind {
    /// Stable machine-readable name.
    pub fn label(self) -> &'static str {
        match self {
            SparseUtilityKind::Linear => "linear",
            SparseUtilityKind::Leontief => "leontief",
        }
    }
}

/// A large sparse Fisher market: capacities, budgets, and each player's
/// interest weights over a sparse resource set.
#[derive(Debug, Clone)]
pub struct SparseMarket {
    capacities: Vec<f64>,
    budgets: Vec<f64>,
    interests: SparseBids,
    kind: SparseUtilityKind,
}

impl SparseMarket {
    /// Creates a sparse market.
    ///
    /// # Errors
    ///
    /// [`MarketError::DimensionMismatch`] when budgets/capacities disagree
    /// with the interest matrix, [`MarketError::InvalidValue`] for
    /// non-positive capacities, negative/non-finite budgets, or
    /// non-positive interest weights (a zero weight is a non-entry: leave
    /// it out of the row instead).
    pub fn new(
        capacities: Vec<f64>,
        budgets: Vec<f64>,
        interests: SparseBids,
        kind: SparseUtilityKind,
    ) -> Result<Self> {
        if capacities.len() != interests.resources() {
            return Err(MarketError::DimensionMismatch {
                what: "capacities",
                expected: interests.resources(),
                actual: capacities.len(),
            });
        }
        if budgets.len() != interests.players() {
            return Err(MarketError::DimensionMismatch {
                what: "budgets",
                expected: interests.players(),
                actual: budgets.len(),
            });
        }
        for &c in &capacities {
            if !c.is_finite() || c <= 0.0 {
                return Err(MarketError::InvalidValue {
                    what: "capacity",
                    value: c,
                });
            }
        }
        for &b in &budgets {
            if !b.is_finite() || b < 0.0 {
                return Err(MarketError::InvalidValue {
                    what: "budget",
                    value: b,
                });
            }
        }
        for &w in interests.vals() {
            if !w.is_finite() || w <= 0.0 {
                return Err(MarketError::InvalidValue {
                    what: "interest weight",
                    value: w,
                });
            }
        }
        Ok(Self {
            capacities,
            budgets,
            interests,
            kind,
        })
    }

    /// Number of players `N`.
    pub fn players(&self) -> usize {
        self.interests.players()
    }

    /// Number of resources `M`.
    pub fn resources(&self) -> usize {
        self.interests.resources()
    }

    /// Number of (player, resource) interests.
    pub fn nnz(&self) -> usize {
        self.interests.nnz()
    }

    /// Resource capacities `C_j`.
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Player budgets `B_i`.
    pub fn budgets(&self) -> &[f64] {
        &self.budgets
    }

    /// The interest matrix (values are utility weights).
    pub fn interests(&self) -> &SparseBids {
        &self.interests
    }

    /// The utility family.
    pub fn kind(&self) -> SparseUtilityKind {
        self.kind
    }

    /// Solves for the market equilibrium with the engine selected by
    /// [`EquilibriumOptions::solver`].
    ///
    /// # Errors
    ///
    /// [`MarketError::UnsupportedSolver`] for [`SolverKind::Jacobi`] — the
    /// dense engine needs an `N×M` matrix, which is exactly what sparse
    /// markets avoid. Non-convergence is *not* an error; inspect
    /// [`SparseOutcome::report`].
    pub fn solve(&self, options: &EquilibriumOptions) -> Result<SparseOutcome> {
        match options.solver {
            SolverKind::Jacobi => Err(MarketError::UnsupportedSolver {
                solver: SolverKind::Jacobi.label(),
                context: "sparse markets (use propresp or mirror, or densify first)",
            }),
            SolverKind::ProportionalResponse => crate::proportional_response::solve(self, options),
            SolverKind::MirrorDescent => crate::mirror_descent::solve(self, options),
        }
    }

    /// Densifies into a [`Market`] of [`LinearUtility`] players (small
    /// markets only) so the sparse solvers can be cross-validated against
    /// the dense engines on identical inputs.
    ///
    /// # Errors
    ///
    /// [`MarketError::UnsupportedSolver`] for Leontief markets (the dense
    /// utility zoo has no Leontief member); otherwise propagates dense
    /// construction errors.
    pub fn to_market(&self) -> Result<Market> {
        if self.kind != SparseUtilityKind::Linear {
            return Err(MarketError::UnsupportedSolver {
                solver: self.kind.label(),
                context: "densification (only linear sparse markets densify)",
            });
        }
        let resources = ResourceSpace::new(self.capacities.clone())?;
        let players = (0..self.players())
            .map(|i| {
                let mut weights = vec![0.0; self.resources()];
                for (&c, &v) in self
                    .interests
                    .row_cols(i)
                    .iter()
                    .zip(self.interests.row_vals(i))
                {
                    weights[c as usize] = v;
                }
                Ok(Player::new(
                    format!("p{i}"),
                    self.budgets[i],
                    Arc::new(LinearUtility::new(weights)?) as Arc<dyn crate::Utility>,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        Market::new(resources, players)
    }
}

/// The result of a sparse equilibrium solve.
///
/// Allocations are not materialized (an `N×M` dense matrix at `10⁶`
/// players would dwarf the market itself): a player's allocation follows
/// from its bids and the prices via [`SparseOutcome::allocation_of`].
#[derive(Debug, Clone)]
pub struct SparseOutcome {
    /// Final bids over the interest structure.
    pub bids: SparseBids,
    /// Final per-unit prices `p_j = Σ_i b_ij / C_j`.
    pub prices: Vec<f64>,
    /// Per-player utility at the final allocation.
    pub utilities: Vec<f64>,
    /// Solver iterations executed.
    pub iterations: u64,
    /// How the solve went — same [`SolveReport`] semantics (residual =
    /// relative excess demand, recovery actions, deadline verdict) as the
    /// dense engines.
    pub report: SolveReport,
    /// Per-iteration price vectors when
    /// [`EquilibriumOptions::record_history`] is set.
    pub price_history: Vec<Vec<f64>>,
}

impl SparseOutcome {
    /// System efficiency `Σ_i U_i` at the final allocation.
    pub fn efficiency(&self) -> f64 {
        self.utilities.iter().sum()
    }

    /// Shorthand for `report.converged`.
    pub fn converged(&self) -> bool {
        self.report.converged
    }

    /// Player `i`'s allocation as `(resource, amount)` pairs over its
    /// interest set: `x_ij = b_ij / p_j` (zero where the price is zero).
    pub fn allocation_of(&self, i: usize) -> Vec<(usize, f64)> {
        self.bids
            .row_cols(i)
            .iter()
            .zip(self.bids.row_vals(i))
            .map(|(&c, &b)| {
                let p = self.prices[c as usize];
                (c as usize, if p > 0.0 { b / p } else { 0.0 })
            })
            .collect()
    }
}

/// Pareto tail exponent for player degrees: mean degree ≈
/// `α·min/(α−1) = 2·min` at α = 2.
const DEGREE_ALPHA: f64 = 2.0;

/// Zipf-style exponent for resource popularity: resource `j` is picked
/// with probability ∝ `(j+1)^-0.7` — a heavy head of contested resources
/// plus a long tail.
const POPULARITY_EXPONENT: f64 = 0.7;

/// A reproducible synthetic large-market specification: power-law player
/// degrees over power-law-popular resources, uniform weights and budgets.
///
/// Generation is a pure function of the fields (SplitMix64 streams keyed
/// by `(seed, player)`), so equal specs generate bit-identical markets on
/// every host.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    /// Number of players `N`.
    pub players: usize,
    /// Number of resources `M`.
    pub resources: usize,
    /// Generation seed.
    pub seed: u64,
    /// Minimum interests per player (also the Pareto scale; default 4).
    pub min_degree: usize,
    /// Maximum interests per player (clamped to `resources`; default 32).
    pub max_degree: usize,
    /// Utility family to generate (default linear).
    pub kind: SparseUtilityKind,
}

impl SynthSpec {
    /// A spec with the default degree distribution (min 4, max 32,
    /// mean ≈ 8) and linear utilities.
    pub fn new(players: usize, resources: usize, seed: u64) -> Self {
        Self {
            players,
            resources,
            seed,
            min_degree: 4,
            max_degree: 32,
            kind: SparseUtilityKind::Linear,
        }
    }

    /// Generates the market.
    ///
    /// Every resource is guaranteed at least two interested players (a
    /// *strongly competitive* market: all prices are positive and the
    /// equilibrium is interior), by topping up under-subscribed resources
    /// round-robin after the random pass.
    ///
    /// # Errors
    ///
    /// [`MarketError::Empty`] for zero players/resources,
    /// [`MarketError::InvalidValue`] for a degenerate degree range.
    pub fn generate(&self) -> Result<SparseMarket> {
        if self.players == 0 {
            return Err(MarketError::Empty { what: "players" });
        }
        if self.resources == 0 {
            return Err(MarketError::Empty { what: "resources" });
        }
        if self.min_degree == 0 || self.max_degree < self.min_degree {
            return Err(MarketError::InvalidValue {
                what: "degree range",
                value: self.max_degree as f64,
            });
        }
        let (n, m) = (self.players, self.resources);
        let max_degree = self.max_degree.min(m);
        let min_degree = self.min_degree.min(max_degree);

        // Cumulative resource-popularity weights for inverse-CDF sampling.
        let mut cum = Vec::with_capacity(m);
        let mut total = 0.0;
        for j in 0..m {
            total += ((j + 1) as f64).powf(-POPULARITY_EXPONENT);
            cum.push(total);
        }

        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut budgets = Vec::with_capacity(n);
        let mut bidders = vec![0usize; m];
        for i in 0..n {
            let mut rng = Stream::new(self.seed, i as u64);
            // Pareto(min_degree, α) degree, clamped into the legal range.
            let u = rng.unit_open();
            let deg = (min_degree as f64 / u.powf(1.0 / DEGREE_ALPHA)).floor() as usize;
            let deg = deg.clamp(min_degree, max_degree);
            let mut row: Vec<(usize, f64)> = Vec::with_capacity(deg);
            if deg * 2 >= m {
                // Dense row: rejection sampling would thrash, so take the
                // head of a seeded index shuffle instead.
                let mut perm: Vec<usize> = (0..m).collect();
                for k in (1..m).rev() {
                    let r = (rng.next() % (k as u64 + 1)) as usize;
                    perm.swap(k, r);
                }
                for &j in perm.iter().take(deg) {
                    row.push((j, 0.1 + 0.9 * rng.unit()));
                }
            } else {
                while row.len() < deg {
                    let target = rng.unit() * total;
                    let j = cum.partition_point(|&c| c < target).min(m - 1);
                    if !row.iter().any(|&(c, _)| c == j) {
                        row.push((j, 0.1 + 0.9 * rng.unit()));
                    }
                }
            }
            for &(j, _) in &row {
                bidders[j] += 1;
            }
            rows.push(row);
            budgets.push(0.5 + rng.unit());
        }

        // Strong-competitiveness top-up: every resource gets ≥ 2 bidders.
        let mut cursor = 0usize;
        for j in 0..m {
            while bidders[j] < 2 {
                let mut placed = false;
                for _ in 0..n {
                    let i = cursor;
                    cursor = (cursor + 1) % n;
                    if rows[i].len() < m && !rows[i].iter().any(|&(c, _)| c == j) {
                        rows[i].push((j, 0.5));
                        bidders[j] += 1;
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    // Fewer players than needed bidders (tiny N): accept
                    // the under-subscribed resource rather than loop.
                    break;
                }
            }
        }

        let capacities = vec![1.0; m];
        let interests = SparseBids::from_rows(m, rows)?;
        SparseMarket::new(capacities, budgets, interests, self.kind)
    }
}

/// A per-player SplitMix64 stream: decisions for player `i` are a pure
/// function of `(seed, i)`, independent of generation order.
struct Stream(u64);

impl Stream {
    fn new(seed: u64, key: u64) -> Self {
        Stream(splitmix(
            seed ^ splitmix(key.wrapping_add(0x9e37_79b9_7f4a_7c15)),
        ))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix(self.0)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `(0, 1]` (safe under `powf`/`ln`).
    fn unit_open(&mut self) -> f64 {
        ((self.next() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tiny() -> SparseBids {
        SparseBids::from_rows(
            3,
            vec![
                vec![(0, 1.0), (2, 2.0)],
                vec![(1, 3.0)],
                vec![(2, 4.0), (0, 5.0), (1, 6.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn csr_layout_and_accessors() {
        let s = tiny();
        assert_eq!((s.players(), s.resources(), s.nnz()), (3, 3, 6));
        assert_eq!(s.row_ptr(), &[0, 2, 3, 6]);
        // Rows are sorted by column even when given unsorted.
        assert_eq!(s.row_cols(2), &[0, 1, 2]);
        assert_eq!(s.row_vals(2), &[5.0, 6.0, 4.0]);
        assert_eq!(s.column_sums(), vec![6.0, 9.0, 6.0]);
    }

    #[test]
    fn from_rows_rejects_bad_input() {
        assert!(SparseBids::from_rows(3, vec![]).is_err());
        assert!(SparseBids::from_rows(0, vec![vec![(0, 1.0)]]).is_err());
        assert!(SparseBids::from_rows(2, vec![vec![(2, 1.0)]]).is_err());
        assert!(SparseBids::from_rows(2, vec![vec![(1, 1.0), (1, 2.0)]]).is_err());
        assert!(SparseBids::from_rows(2, vec![vec![(0, f64::NAN)]]).is_err());
        assert!(SparseBids::from_rows(2, vec![vec![(0, -1.0)]]).is_err());
    }

    #[test]
    fn to_dense_round_trips() {
        let s = tiny();
        let d = s.to_dense().unwrap();
        assert_eq!(d.get(0, 2), 2.0);
        assert_eq!(d.get(1, 0), 0.0);
        assert_eq!(d.get(2, 1), 6.0);
    }

    #[test]
    fn market_validation() {
        let interests = SparseBids::from_rows(2, vec![vec![(0, 1.0)], vec![(1, 1.0)]]).unwrap();
        assert!(SparseMarket::new(
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            interests.clone(),
            SparseUtilityKind::Linear
        )
        .is_ok());
        // Wrong lengths.
        assert!(SparseMarket::new(
            vec![1.0],
            vec![1.0, 1.0],
            interests.clone(),
            SparseUtilityKind::Linear
        )
        .is_err());
        assert!(SparseMarket::new(
            vec![1.0, 1.0],
            vec![1.0],
            interests.clone(),
            SparseUtilityKind::Linear
        )
        .is_err());
        // Bad values.
        assert!(SparseMarket::new(
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            interests.clone(),
            SparseUtilityKind::Linear
        )
        .is_err());
        assert!(SparseMarket::new(
            vec![1.0, 1.0],
            vec![-1.0, 1.0],
            interests,
            SparseUtilityKind::Linear
        )
        .is_err());
        // Zero interest weight.
        let zero = SparseBids::from_rows(2, vec![vec![(0, 0.0)], vec![(1, 1.0)]]).unwrap();
        assert!(SparseMarket::new(
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            zero,
            SparseUtilityKind::Linear
        )
        .is_err());
    }

    #[test]
    fn jacobi_is_rejected_on_sparse_markets() {
        let market = SynthSpec::new(16, 4, 7).generate().unwrap();
        let err = market.solve(&EquilibriumOptions::default()).unwrap_err();
        assert!(matches!(err, MarketError::UnsupportedSolver { .. }));
    }

    #[test]
    fn generator_is_deterministic_and_well_formed() {
        let spec = SynthSpec::new(500, 16, 42);
        let a = spec.generate().unwrap();
        let b = spec.generate().unwrap();
        assert_eq!(a.interests(), b.interests());
        assert_eq!(a.budgets(), b.budgets());
        assert_eq!(a.players(), 500);
        assert_eq!(a.resources(), 16);
        // Degrees within the configured band.
        for i in 0..a.players() {
            let deg = a.interests().row_cols(i).len();
            assert!((4..=16).contains(&deg), "player {i} degree {deg}");
        }
        // Every resource is contested (≥ 2 bidders).
        let mut bidders = vec![0usize; 16];
        for &c in a.interests().cols() {
            bidders[c as usize] += 1;
        }
        assert!(bidders.iter().all(|&b| b >= 2), "{bidders:?}");
        // A different seed gives a different market.
        let c = SynthSpec::new(500, 16, 43).generate().unwrap();
        assert_ne!(a.interests(), c.interests());
    }

    #[test]
    fn generator_popularity_is_head_heavy() {
        let market = SynthSpec::new(2000, 32, 1).generate().unwrap();
        let mut bidders = vec![0usize; 32];
        for &c in market.interests().cols() {
            bidders[c as usize] += 1;
        }
        let head: usize = bidders[..8].iter().sum();
        let tail: usize = bidders[24..].iter().sum();
        assert!(
            head > 2 * tail,
            "power-law popularity: head {head} vs tail {tail}"
        );
    }

    #[test]
    fn densified_market_matches_sparse_structure() {
        let sparse = SynthSpec::new(12, 6, 3).generate().unwrap();
        let dense = sparse.to_market().unwrap();
        assert_eq!(dense.len(), 12);
        assert_eq!(dense.resources().len(), 6);
        for (i, b) in sparse.budgets().iter().enumerate() {
            assert_eq!(dense.players()[i].budget(), *b);
        }
    }
}
