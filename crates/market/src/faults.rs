//! Deterministic, seeded fault injection for the market pipeline.
//!
//! The ReBudget loop runs *online*: every interval it rebuilds utilities
//! from hardware-monitor estimates and re-solves the market. Telemetry
//! noise, stale readings, missing bids, and strategic misreporting are the
//! normal operating regime, not exceptional — this module models them so
//! the guardrails in [`crate::equilibrium`] and the degradation policy in
//! the mechanism layer can be exercised reproducibly.
//!
//! A [`FaultPlan`] is a pure description: every decision it makes is a
//! deterministic function of `(seed, interval, player)` via the vendored
//! `rand` shim, and the noise applied inside utility wrappers is a pure
//! hash of the evaluation point. The same plan therefore produces
//! bit-identical faults in serial and parallel runs, and across repeated
//! executions — which is what lets the fault-tolerance property tests pin
//! exact behaviour per seed.
//!
//! Fault taxonomy (matching the paper's pipeline seams):
//!
//! * **noise** — multiplicative Gaussian noise on utility evaluations,
//!   standing in for miss-curve / IPC-sample estimation error;
//! * **spike** — occasional large multiplicative outliers (a mis-sampled
//!   counter);
//! * **nan** — non-finite utility evaluations (a torn/overflowed reading);
//! * **drop** — a player's bid never arrives this interval; the market is
//!   solved without it and the player receives nothing;
//! * **stale** — a player's utility estimate is `stale_depth` intervals
//!   old (applied by the simulator, which owns the history);
//! * **liar** — an adversarial bidder that persistently overstates its
//!   utility (and hence its elasticity/λ) by `liar_exaggeration`.

use std::sync::Arc;

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::{AllocationMatrix, Market, MarketError, Player, Result, Utility};

/// Domain-separation tags for per-decision seeding.
const TAG_DROP: u64 = 0x009d_5f01;
const TAG_STALE: u64 = 0x009d_5f02;
const TAG_LIAR: u64 = 0x009d_5f03;

/// A deterministic, seeded plan of faults to inject into the pipeline.
///
/// All probabilities are per player per interval. The default plan injects
/// nothing ([`FaultPlan::is_active`] is `false`), so it can be carried
/// around unconditionally.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every fault decision derives from it deterministically.
    pub seed: u64,
    /// Std-dev of the multiplicative Gaussian noise on utility values
    /// (0.1 = ±10% typical error). 0 disables.
    pub noise_sigma: f64,
    /// Probability that a utility evaluation is hit by a large outlier.
    pub spike_probability: f64,
    /// Multiplier applied on a spike (values > 1; the direction — inflate
    /// or deflate — is itself a coin flip).
    pub spike_probability_magnitude: f64,
    /// Probability that a player's telemetry is stale this interval.
    pub stale_probability: f64,
    /// How many intervals back a stale reading reaches (the paper's
    /// interval `N − k`).
    pub stale_depth: usize,
    /// Probability that a player's bid is dropped entirely this interval.
    pub drop_probability: f64,
    /// Probability that a utility evaluation returns NaN.
    pub nan_probability: f64,
    /// Number of adversarial "liar" bidders that persistently overstate
    /// their utility.
    pub liars: usize,
    /// Factor by which liars overstate value and marginals (> 1).
    pub liar_exaggeration: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            noise_sigma: 0.0,
            spike_probability: 0.0,
            spike_probability_magnitude: 4.0,
            stale_probability: 0.0,
            stale_depth: 1,
            drop_probability: 0.0,
            nan_probability: 0.0,
            liars: 0,
            liar_exaggeration: 3.0,
        }
    }
}

impl FaultPlan {
    /// A no-fault plan with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Parses a compact spec string, e.g.
    /// `"noise=0.1,drop=0.05,liars=2,seed=7"`.
    ///
    /// Recognised keys: `seed`, `noise`, `spike`, `spike-mag`, `stale`,
    /// `stale-depth`, `drop`, `nan`, `liars`, `liar-factor`. Keys may
    /// appear in any order; unknown keys, malformed numbers, and
    /// out-of-range values are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::InvalidUtility`]-style typed errors — an
    /// [`MarketError::InvalidValue`] naming the offending key.
    pub fn parse(spec: &str) -> Result<Self> {
        let mut plan = Self::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part.split_once('=').ok_or(MarketError::InvalidValue {
                what: "fault spec entry (expected key=value)",
                value: f64::NAN,
            })?;
            let key = key.trim();
            let value = value.trim();
            if key == "seed" {
                // Parse the seed as an integer first so the full u64 range
                // survives (the f64 fallback below truncates above 2^53 —
                // kept for legacy specs like `seed=1e3`).
                if let Ok(seed) = value.parse::<u64>() {
                    plan.seed = seed;
                    continue;
                }
            }
            let num: f64 = value.parse().map_err(|_| MarketError::InvalidValue {
                what: "fault spec number",
                value: f64::NAN,
            })?;
            if !num.is_finite() || num < 0.0 {
                return Err(MarketError::InvalidValue {
                    what: "fault spec value",
                    value: num,
                });
            }
            match key {
                "seed" => plan.seed = num as u64,
                "noise" => plan.noise_sigma = num,
                "spike" => plan.spike_probability = num,
                "spike-mag" => plan.spike_probability_magnitude = num.max(1.0),
                "stale" => plan.stale_probability = num,
                "stale-depth" => plan.stale_depth = (num as usize).max(1),
                "drop" => plan.drop_probability = num,
                "nan" => plan.nan_probability = num,
                "liars" => plan.liars = num as usize,
                "liar-factor" => plan.liar_exaggeration = num.max(1.0),
                _ => {
                    return Err(MarketError::InvalidValue {
                        what: "fault spec key",
                        value: num,
                    })
                }
            }
        }
        Ok(plan)
    }

    /// Returns `self` with the seed replaced.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scales all fault intensities by `x` (probabilities clamped to 1):
    /// `at_intensity(0.0)` is fault-free, `at_intensity(1.0)` is the plan
    /// itself, and values above 1 overdrive it. Used by the robustness
    /// sweep bench.
    #[must_use]
    pub fn at_intensity(&self, x: f64) -> Self {
        let x = x.max(0.0);
        let p = |p: f64| (p * x).clamp(0.0, 1.0);
        Self {
            seed: self.seed,
            noise_sigma: self.noise_sigma * x,
            spike_probability: p(self.spike_probability),
            spike_probability_magnitude: self.spike_probability_magnitude,
            stale_probability: p(self.stale_probability),
            stale_depth: self.stale_depth,
            drop_probability: p(self.drop_probability),
            nan_probability: p(self.nan_probability),
            liars: (self.liars as f64 * x).round() as usize,
            liar_exaggeration: self.liar_exaggeration,
        }
    }

    /// `true` if this plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.noise_sigma > 0.0
            || self.spike_probability > 0.0
            || self.stale_probability > 0.0
            || self.drop_probability > 0.0
            || self.nan_probability > 0.0
            || self.liars > 0
    }

    /// A uniform draw in `[0, 1)` for decision `tag` about player `i` at
    /// `interval` — a pure function of the plan's seed, so decisions are
    /// order-independent and reproducible.
    fn decision(&self, tag: u64, interval: u64, i: u64) -> f64 {
        let mut h = self.seed ^ tag;
        h = splitmix(h ^ interval.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h = splitmix(h ^ i.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        let mut rng = StdRng::seed_from_u64(h);
        rng.random_range(0.0..1.0)
    }

    /// Whether player `i`'s bid is dropped at `interval`.
    pub fn is_dropped(&self, interval: u64, i: usize) -> bool {
        self.drop_probability > 0.0
            && self.decision(TAG_DROP, interval, i as u64) < self.drop_probability
    }

    /// If player `i`'s telemetry is stale at `interval`, how many
    /// intervals back its reading reaches.
    pub fn stale_depth_for(&self, interval: u64, i: usize) -> Option<usize> {
        if self.stale_probability > 0.0
            && self.decision(TAG_STALE, interval, i as u64) < self.stale_probability
        {
            Some(self.stale_depth.max(1))
        } else {
            None
        }
    }

    /// The (persistent) set of adversarial liar players in a market of
    /// `n`: the `liars` players with the smallest selection draws. The
    /// set does not change between intervals — an adversary is a property
    /// of the workload, not of a single reading.
    pub fn liar_indices(&self, n: usize) -> Vec<usize> {
        if self.liars == 0 || n == 0 {
            return Vec::new();
        }
        let mut scored: Vec<(f64, usize)> = (0..n)
            .map(|i| (self.decision(TAG_LIAR, 0, i as u64), i))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut picked: Vec<usize> = scored
            .into_iter()
            .take(self.liars.min(n))
            .map(|(_, i)| i)
            .collect();
        picked.sort_unstable();
        picked
    }

    /// Applies the plan to a market for one interval: liars get
    /// exaggerated utilities, noisy/spiky/NaN-prone wrappers are
    /// installed, and dropped players are removed (the caller re-expands
    /// the allocation with [`FaultedMarket::expand_allocation`]).
    ///
    /// At least one player is always kept, so the faulted market is
    /// well-formed even at `drop=1.0`.
    ///
    /// # Errors
    ///
    /// Propagates [`Market::new`] validation errors (which cannot trigger
    /// for a market that was already valid).
    pub fn apply(&self, market: &Market, interval: u64) -> Result<FaultedMarket> {
        let n = market.len();
        let liars = self.liar_indices(n);
        let mut dropped: Vec<usize> = (0..n).filter(|&i| self.is_dropped(interval, i)).collect();
        if dropped.len() == n {
            // Keep the lowest-index player so the market stays non-empty.
            dropped.remove(0);
        }
        let kept: Vec<usize> = (0..n).filter(|i| !dropped.contains(i)).collect();

        let perturbs =
            self.noise_sigma > 0.0 || self.spike_probability > 0.0 || self.nan_probability > 0.0;
        let players: Vec<Player> = kept
            .iter()
            .map(|&i| {
                let p = &market.players()[i];
                let mut utility: Arc<dyn Utility> = Arc::clone(p.utility());
                if liars.contains(&i) {
                    utility = Arc::new(ExaggeratedUtility {
                        inner: utility,
                        factor: self.liar_exaggeration.max(1.0),
                    });
                }
                if perturbs {
                    let mut salt = splitmix(self.seed ^ 0x009d_5f04);
                    salt = splitmix(salt ^ interval);
                    salt = splitmix(salt ^ i as u64);
                    utility = Arc::new(NoisyUtility {
                        inner: utility,
                        sigma: self.noise_sigma,
                        spike_probability: self.spike_probability,
                        spike_magnitude: self.spike_probability_magnitude.max(1.0),
                        nan_probability: self.nan_probability,
                        salt,
                    });
                }
                Player::new(p.name().to_string(), p.budget(), utility)
            })
            .collect();
        let market = Market::new(market.resources().clone(), players)?;
        Ok(FaultedMarket {
            market,
            kept,
            dropped,
            liars,
        })
    }
}

impl std::fmt::Display for FaultPlan {
    /// Renders the plan in the exact grammar [`FaultPlan::parse`] accepts,
    /// omitting fields at their default values — so `parse(display(p))`
    /// reproduces `p` for every plan whose fields are in the grammar's
    /// range (finite, non-negative, magnitudes ≥ 1, depth ≥ 1). The
    /// default plan renders as the empty string, which parses back to the
    /// default plan. Rust's shortest-round-trip float formatting keeps the
    /// f64 fields bit-exact through the trip.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = Self::default();
        let mut parts: Vec<String> = Vec::new();
        if self.seed != d.seed {
            parts.push(format!("seed={}", self.seed));
        }
        if self.noise_sigma != d.noise_sigma {
            parts.push(format!("noise={}", self.noise_sigma));
        }
        if self.spike_probability != d.spike_probability {
            parts.push(format!("spike={}", self.spike_probability));
        }
        if self.spike_probability_magnitude != d.spike_probability_magnitude {
            parts.push(format!("spike-mag={}", self.spike_probability_magnitude));
        }
        if self.stale_probability != d.stale_probability {
            parts.push(format!("stale={}", self.stale_probability));
        }
        if self.stale_depth != d.stale_depth {
            parts.push(format!("stale-depth={}", self.stale_depth));
        }
        if self.drop_probability != d.drop_probability {
            parts.push(format!("drop={}", self.drop_probability));
        }
        if self.nan_probability != d.nan_probability {
            parts.push(format!("nan={}", self.nan_probability));
        }
        if self.liars != d.liars {
            parts.push(format!("liars={}", self.liars));
        }
        if self.liar_exaggeration != d.liar_exaggeration {
            parts.push(format!("liar-factor={}", self.liar_exaggeration));
        }
        f.write_str(&parts.join(","))
    }
}

/// The result of applying a [`FaultPlan`] to a market for one interval.
#[derive(Debug)]
pub struct FaultedMarket {
    /// The faulted market: dropped players removed, surviving players
    /// wrapped with noisy/exaggerated utilities as the plan dictates.
    pub market: Market,
    /// Original indices of the surviving players, in order.
    pub kept: Vec<usize>,
    /// Original indices of the players whose bids were dropped.
    pub dropped: Vec<usize>,
    /// Original indices of the adversarial liar players.
    pub liars: Vec<usize>,
}

impl FaultedMarket {
    /// Expands an allocation over the reduced (faulted) market back to the
    /// original player count: surviving players keep their rows, dropped
    /// players get zero rows. Column sums — and hence exhaustiveness — are
    /// preserved.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::DimensionMismatch`] if `alloc` does not
    /// match the reduced market's shape.
    pub fn expand_allocation(
        &self,
        alloc: &AllocationMatrix,
        original_players: usize,
    ) -> Result<AllocationMatrix> {
        let m = alloc.resources();
        if alloc.players() != self.kept.len() {
            return Err(MarketError::DimensionMismatch {
                what: "faulted allocation rows",
                expected: self.kept.len(),
                actual: alloc.players(),
            });
        }
        let mut full = AllocationMatrix::zeros(original_players, m)?;
        for (row, &i) in self.kept.iter().enumerate() {
            for j in 0..m {
                full.set(i, j, alloc.get(row, j));
            }
        }
        Ok(full)
    }
}

/// Deterministic standard-Gaussian sample for `(salt, index)` — the same
/// hash-based Box–Muller generator the noisy-utility wrapper uses, exposed
/// so the simulator can perturb monitor-derived curves with the same
/// seeding discipline (pure function, bit-identical across runs).
pub fn gaussian_sample(salt: u64, index: u64) -> f64 {
    let k = splitmix(splitmix(salt) ^ index);
    let (u1, u2) = (unit(splitmix(k ^ 1)), unit(splitmix(k ^ 2)));
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One SplitMix64 scramble step — the workhorse of the stateless noise
/// (shared with the synthetic market generator in [`crate::sparse`]).
pub(crate) fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes an evaluation point (plus a salt) to a 64-bit key. Pure: equal
/// inputs give equal keys, which keeps noisy utilities `Sync`-safe and
/// the whole pipeline bit-deterministic.
fn point_key(salt: u64, r: &[f64]) -> u64 {
    let mut h = splitmix(salt);
    for &v in r {
        h = splitmix(h ^ v.to_bits());
    }
    h
}

/// `u64` key → uniform in `(0, 1]` (never exactly 0, so `ln` is safe).
fn unit(h: u64) -> f64 {
    (((h >> 11) as f64) + 1.0) * (1.0 / (1u64 << 53) as f64)
}

/// A utility wrapper injecting multiplicative Gaussian noise, occasional
/// spikes, and occasional NaN evaluations — all as a *pure function* of
/// the evaluation point, so the wrapper stays `Send + Sync` and the run
/// deterministic.
struct NoisyUtility {
    inner: Arc<dyn Utility>,
    sigma: f64,
    spike_probability: f64,
    spike_magnitude: f64,
    nan_probability: f64,
    salt: u64,
}

impl Utility for NoisyUtility {
    fn value(&self, r: &[f64]) -> f64 {
        let u = self.inner.value(r);
        let k0 = point_key(self.salt, r);
        if self.nan_probability > 0.0 && unit(k0) <= self.nan_probability {
            return f64::NAN;
        }
        let mut out = u;
        if self.sigma > 0.0 {
            // Box–Muller from two hash-derived uniforms.
            let (u1, u2) = (unit(splitmix(k0 ^ 1)), unit(splitmix(k0 ^ 2)));
            let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            out *= 1.0 + self.sigma * g;
        }
        if self.spike_probability > 0.0 && unit(splitmix(k0 ^ 3)) <= self.spike_probability {
            // Direction of the outlier is itself a coin flip.
            if splitmix(k0 ^ 4) & 1 == 0 {
                out *= self.spike_magnitude;
            } else {
                out /= self.spike_magnitude;
            }
        }
        out.max(0.0)
    }
    // `marginal` deliberately uses the trait's finite-difference default
    // over the *noisy* value(), so derivative estimates are noisy too —
    // exactly what a monitor-driven pipeline sees.
}

/// An adversarial bidder that overstates its utility (value *and*
/// marginals) by a constant factor, inflating its apparent elasticity
/// and marginal utility of money.
struct ExaggeratedUtility {
    inner: Arc<dyn Utility>,
    factor: f64,
}

impl Utility for ExaggeratedUtility {
    fn value(&self, r: &[f64]) -> f64 {
        self.factor * self.inner.value(r)
    }
    fn marginal(&self, r: &[f64], j: usize) -> f64 {
        self.factor * self.inner.marginal(r, j)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::utility::SeparableUtility;
    use crate::{Player, ResourceSpace};

    fn market(n: usize) -> Market {
        let caps = [16.0, 80.0];
        let resources = ResourceSpace::new(caps.to_vec()).unwrap();
        let players = (0..n)
            .map(|i| {
                let w = 0.2 + 0.6 * (i as f64 / n.max(2) as f64);
                Player::new(
                    format!("p{i}"),
                    100.0,
                    Arc::new(SeparableUtility::proportional(&[w, 1.0 - w], &caps).unwrap())
                        as Arc<dyn Utility>,
                )
            })
            .collect();
        Market::new(resources, players).unwrap()
    }

    #[test]
    fn default_plan_is_inactive_identity() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        let m = market(4);
        let f = plan.apply(&m, 0).unwrap();
        assert!(f.dropped.is_empty());
        assert!(f.liars.is_empty());
        assert_eq!(f.kept, vec![0, 1, 2, 3]);
        // Utilities pass through untouched (no wrapper installed).
        let r = [2.0, 10.0];
        for (a, b) in m.players().iter().zip(f.market.players()) {
            assert_eq!(a.utility_of(&r).to_bits(), b.utility_of(&r).to_bits());
        }
    }

    #[test]
    fn parse_round_trips_keys() {
        let plan = FaultPlan::parse("noise=0.1, drop=0.05, liars=2, seed=7, stale=0.2").unwrap();
        assert_eq!(plan.seed, 7);
        assert!((plan.noise_sigma - 0.1).abs() < 1e-12);
        assert!((plan.drop_probability - 0.05).abs() < 1e-12);
        assert!((plan.stale_probability - 0.2).abs() < 1e-12);
        assert_eq!(plan.liars, 2);
        assert!(plan.is_active());
        assert!(FaultPlan::parse("").unwrap() == FaultPlan::default());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("noise").is_err());
        assert!(FaultPlan::parse("noise=-1").is_err());
        assert!(FaultPlan::parse("noise=abc").is_err());
    }

    #[test]
    fn display_parse_round_trips() {
        // Shortest-round-trip float formatting + the integer seed path
        // make `parse(display(p)) == p` hold for every in-grammar plan.
        let unit = |h: u64| (h >> 11) as f64 / (1u64 << 53) as f64;
        for k in 0..200u64 {
            let s = |t: u64| splitmix(k.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ t);
            let plan = FaultPlan {
                seed: s(1),
                noise_sigma: unit(s(2)),
                spike_probability: unit(s(3)),
                spike_probability_magnitude: 1.0 + 8.0 * unit(s(4)),
                stale_probability: unit(s(5)),
                stale_depth: 1 + (s(6) % 7) as usize,
                drop_probability: unit(s(7)),
                nan_probability: unit(s(8)),
                liars: (s(9) % 5) as usize,
                liar_exaggeration: 1.0 + 4.0 * unit(s(10)),
            };
            let shown = plan.to_string();
            let back = FaultPlan::parse(&shown).unwrap();
            assert_eq!(back, plan, "spec `{shown}` must round-trip");
        }
        assert_eq!(FaultPlan::default().to_string(), "");
        assert_eq!(
            FaultPlan::parse("").unwrap(),
            FaultPlan::parse(&FaultPlan::default().to_string()).unwrap()
        );
        let p = FaultPlan::parse("noise=0.15,drop=0.1,stale=0.2,liars=2,seed=23").unwrap();
        assert_eq!(FaultPlan::parse(&p.to_string()).unwrap(), p);
        assert_eq!(
            p.to_string(),
            "seed=23,noise=0.15,stale=0.2,drop=0.1,liars=2"
        );
    }

    #[test]
    fn seed_survives_the_full_u64_range() {
        let big = FaultPlan::parse("seed=18446744073709551615").unwrap();
        assert_eq!(big.seed, u64::MAX);
        assert_eq!(FaultPlan::parse(&big.to_string()).unwrap(), big);
        // Legacy float-form seeds still work (truncated via f64).
        assert_eq!(FaultPlan::parse("seed=1e3").unwrap().seed, 1000);
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let plan = FaultPlan::parse("drop=0.3,seed=42").unwrap();
        for interval in 0..10 {
            for i in 0..16 {
                assert_eq!(plan.is_dropped(interval, i), plan.is_dropped(interval, i),);
            }
        }
        // Different seeds give different drop patterns (statistically
        // certain over 160 draws).
        let other = plan.clone().with_seed(43);
        let a: Vec<bool> = (0..160)
            .map(|k| plan.is_dropped(k / 16, (k % 16) as usize))
            .collect();
        let b: Vec<bool> = (0..160)
            .map(|k| other.is_dropped(k / 16, (k % 16) as usize))
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn liar_set_is_persistent_and_sized() {
        let plan = FaultPlan::parse("liars=3,seed=5").unwrap();
        let liars = plan.liar_indices(10);
        assert_eq!(liars.len(), 3);
        assert_eq!(liars, plan.liar_indices(10));
        assert!(liars.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(plan.liar_indices(2).len(), 2, "clamped to n");
    }

    #[test]
    fn drop_all_keeps_one_player() {
        let plan = FaultPlan::parse("drop=1.0,seed=1").unwrap();
        let m = market(5);
        let f = plan.apply(&m, 3).unwrap();
        assert_eq!(f.kept.len(), 1);
        assert_eq!(f.market.len(), 1);
        assert_eq!(f.dropped.len(), 4);
    }

    #[test]
    fn expand_allocation_zero_fills_dropped_rows() {
        let plan = FaultPlan::parse("drop=0.5,seed=9").unwrap();
        let m = market(8);
        let f = plan.apply(&m, 0).unwrap();
        assert!(!f.dropped.is_empty(), "seed 9 drops someone at p=0.5");
        let out = f
            .market
            .equilibrium(&crate::equilibrium::EquilibriumOptions::default())
            .unwrap();
        let full = f.expand_allocation(&out.allocation, m.len()).unwrap();
        assert!(full.is_exhaustive(m.resources().capacities(), 1e-9));
        for &i in &f.dropped {
            assert!(full.row(i).iter().all(|&v| v == 0.0));
        }
        for (row, &i) in f.kept.iter().enumerate() {
            for j in 0..2 {
                assert_eq!(
                    full.get(i, j).to_bits(),
                    out.allocation.get(row, j).to_bits()
                );
            }
        }
    }

    #[test]
    fn noise_is_a_pure_function_of_the_point() {
        let plan = FaultPlan::parse("noise=0.2,seed=11").unwrap();
        let m = market(3);
        let f = plan.apply(&m, 2).unwrap();
        let r = [3.0, 20.0];
        let u = f.market.players()[0].utility_of(&r);
        for _ in 0..5 {
            assert_eq!(u.to_bits(), f.market.players()[0].utility_of(&r).to_bits());
        }
        // And it actually perturbs relative to the clean value.
        let clean = m.players()[0].utility_of(&r);
        assert_ne!(u.to_bits(), clean.to_bits());
        assert!(u >= 0.0);
    }

    #[test]
    fn liars_inflate_lambda_but_not_true_utility() {
        let plan = FaultPlan::parse("liars=1,liar-factor=4,seed=2").unwrap();
        let m = market(4);
        let f = plan.apply(&m, 0).unwrap();
        assert_eq!(f.liars.len(), 1);
        let liar = f.liars[0];
        let r = [4.0, 20.0];
        let lied = f.market.players()[liar].utility_of(&r);
        let truth = m.players()[liar].utility_of(&r);
        assert!((lied - 4.0 * truth).abs() < 1e-12);
    }

    #[test]
    fn intensity_scales_probabilities_and_clamps() {
        let plan = FaultPlan::parse("noise=0.2,drop=0.6,liars=2").unwrap();
        let half = plan.at_intensity(0.5);
        assert!((half.noise_sigma - 0.1).abs() < 1e-12);
        assert!((half.drop_probability - 0.3).abs() < 1e-12);
        assert_eq!(half.liars, 1);
        let over = plan.at_intensity(2.0);
        assert!((over.drop_probability - 1.0).abs() < 1e-12, "clamped");
        assert!(!plan.at_intensity(0.0).is_active());
    }
}
