//! The one residual definition every solver in this workspace reports.
//!
//! # Semantics: relative excess demand
//!
//! All solvers measure convergence as the **relative excess demand**
//! between consecutive iterates, evaluated in money space:
//!
//! ```text
//! residual = max_j |p'_j − p_j| / max(|p_j|, |p'_j|, 1e-12)
//! ```
//!
//! where `p_j` is the money committed to resource `j` (`Σ_i b_ij`) before
//! an iteration and `p'_j` after it. Under proportional pricing the money
//! on a good, its unit price, and the demand it attracts are all
//! proportional (`p_j = Σ_i b_ij / C_j`, demand `Σ_i x_ij = C_j` exactly
//! when the committed money matches the price), so the per-good *relative*
//! change is identical whether it is computed over money, unit prices, or
//! excess demand — this is the quantity the paper monitors when it waits
//! for prices to "fluctuate within 1%".
//!
//! Centralizing the fold here guarantees the number in
//! [`crate::SolveReport::residual`] means the same thing for the dense
//! Jacobi engine, the sparse proportional-response solver, the sparse
//! mirror-descent solver, and the dense first-order reference — a residual
//! of `1e-6` is `1e-6` regardless of which solver produced it (asserted by
//! the `first_order` integration suite's regression test).

/// Denominator floor: keeps the relative gap finite when a good's price is
/// (numerically) zero on both sides of an iteration.
pub const RESIDUAL_FLOOR: f64 = 1e-12;

/// Maximum per-coordinate relative gap between two price (or per-good
/// money) vectors — the workspace-wide convergence residual.
///
/// Returns `0.0` for empty vectors. A non-finite input coordinate yields
/// NaN (an infinite price is ∞/∞ under the relative formula) so callers
/// can detect numerical blow-ups — a non-finite residual is treated as
/// divergence by every solver's guardrails.
///
/// # Panics
///
/// Does not panic; if the vectors differ in length the shorter one bounds
/// the fold (callers always pass equal-length vectors).
pub fn relative_price_gap(old: &[f64], new: &[f64]) -> f64 {
    let mut worst = 0.0_f64;
    for (&old, &new) in old.iter().zip(new) {
        let gap = (new - old).abs() / old.abs().max(new.abs()).max(RESIDUAL_FLOOR);
        if gap.is_nan() {
            // `f64::max` would silently drop NaN; divergence must surface.
            return f64::NAN;
        }
        if gap > worst {
            worst = gap;
        }
    }
    worst
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_have_zero_gap() {
        assert_eq!(relative_price_gap(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(relative_price_gap(&[], &[]), 0.0);
    }

    #[test]
    fn gap_is_relative_and_takes_the_max_coordinate() {
        // 10 → 11 is a 1/11 relative change; 100 → 100 contributes nothing.
        let gap = relative_price_gap(&[10.0, 100.0], &[11.0, 100.0]);
        assert!((gap - 1.0 / 11.0).abs() < 1e-15);
        // The worst coordinate wins.
        let gap = relative_price_gap(&[10.0, 100.0], &[11.0, 50.0]);
        assert!((gap - 0.5).abs() < 1e-15);
    }

    #[test]
    fn zero_to_zero_is_zero_not_nan() {
        assert_eq!(relative_price_gap(&[0.0], &[0.0]), 0.0);
    }

    #[test]
    fn appearing_price_is_a_full_relative_change() {
        // 0 → p is a relative change of 1 for any p > floor.
        let gap = relative_price_gap(&[0.0], &[3.0]);
        assert!((gap - 1.0).abs() < 1e-15);
    }

    #[test]
    fn non_finite_inputs_surface_as_nan() {
        assert!(relative_price_gap(&[1.0], &[f64::NAN]).is_nan());
        // 1 → ∞ is ∞/∞ under the relative formula: also NaN.
        assert!(relative_price_gap(&[1.0], &[f64::INFINITY]).is_nan());
        // A non-finite coordinate anywhere poisons the whole residual.
        assert!(relative_price_gap(&[1.0, 2.0], &[1.0, f64::NAN]).is_nan());
    }

    #[test]
    fn symmetric_in_direction() {
        let up = relative_price_gap(&[10.0], &[15.0]);
        let down = relative_price_gap(&[15.0], &[10.0]);
        assert_eq!(up, down);
    }
}
