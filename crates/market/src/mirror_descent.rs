//! Entropic mirror descent on the Eisenberg–Gale program.
//!
//! Mirror descent with the entropy mirror map on the Shmyrev (bid-space)
//! reformulation of Eisenberg–Gale yields a *multiplicative* update over
//! each player's bids — for linear utilities, with bang-per-buck
//! `q_ij = v_ij·C_j/p̂_j`:
//!
//! ```text
//! b'_ij ∝ b_ij · q_ij^γ        (normalized to Σ_j b'_ij = B_i)
//! ```
//!
//! The step `γ ∈ (0, 1]` interpolates between standing still (γ → 0) and
//! full proportional response (γ = 1, exactly
//! [`crate::proportional_response`] — the two share one kernel, so γ = 1
//! is *bit-identical* to PR). Every γ in the range has the same fixed
//! points — bang-per-buck equalized across each player's support, the
//! Eisenberg–Gale first-order condition — so the solvers agree on the
//! equilibrium and differ only in trajectory: smaller steps damp the
//! oscillations that full PR can exhibit on hard instances (Leontief
//! complements especially), at the cost of more iterations.
//!
//! Shares everything with [`crate::proportional_response`]: `O(nnz)`
//! allocation-free iterations, deadline/guardrail/telemetry plumbing from
//! [`crate::first_order`], and the workspace residual semantics
//! ([`crate::residual`]).

use crate::equilibrium::EquilibriumOptions;
use crate::sparse::{SparseMarket, SparseOutcome};
use crate::{MarketError, Result};

/// Default mirror-descent step: damped enough to stabilize Leontief
/// complements, close enough to 1 to keep iteration counts near PR's.
pub const DEFAULT_STEP: f64 = 0.7;

/// Solves `market` with entropic mirror descent at [`DEFAULT_STEP`].
///
/// Honors the same [`EquilibriumOptions`] fields as
/// [`crate::proportional_response::solve`]; non-convergence is reported
/// via [`SparseOutcome::report`], not an error.
///
/// # Errors
///
/// Only degenerate-input errors propagate ([`crate::MarketError`]).
pub fn solve(market: &SparseMarket, options: &EquilibriumOptions) -> Result<SparseOutcome> {
    solve_with_step(market, options, DEFAULT_STEP)
}

/// Solves `market` with entropic mirror descent at step `gamma`.
///
/// # Errors
///
/// [`MarketError::InvalidValue`] unless `gamma ∈ (0, 1]`; otherwise as
/// [`solve`].
pub fn solve_with_step(
    market: &SparseMarket,
    options: &EquilibriumOptions,
    gamma: f64,
) -> Result<SparseOutcome> {
    if !gamma.is_finite() || gamma <= 0.0 || gamma > 1.0 {
        return Err(MarketError::InvalidValue {
            what: "mirror descent step",
            value: gamma,
        });
    }
    crate::first_order::solve_sparse(market, options, gamma)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::sparse::SynthSpec;

    #[test]
    fn step_outside_unit_interval_is_rejected() {
        let market = SynthSpec::new(16, 4, 0).generate().unwrap();
        let opts = EquilibriumOptions::large_scale();
        for gamma in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(
                solve_with_step(&market, &opts, gamma).is_err(),
                "gamma {gamma} must be rejected"
            );
        }
    }

    #[test]
    fn agrees_with_proportional_response_on_the_equilibrium() {
        let market = SynthSpec::new(400, 8, 21).generate().unwrap();
        let mut opts = EquilibriumOptions::large_scale();
        opts.max_iterations = 100_000;
        opts.price_tolerance = 1e-10;
        let md = solve(&market, &opts).unwrap();
        let pr = crate::proportional_response::solve(&market, &opts).unwrap();
        assert!(md.converged() && pr.converged());
        for (a, b) in md.prices.iter().zip(&pr.prices) {
            assert!(
                (a - b).abs() / a.max(*b).max(1e-12) < 1e-6,
                "prices diverge: {a} vs {b}"
            );
        }
    }

    #[test]
    fn smaller_steps_take_more_iterations() {
        let market = SynthSpec::new(400, 8, 22).generate().unwrap();
        let mut opts = EquilibriumOptions::large_scale();
        opts.max_iterations = 100_000;
        opts.price_tolerance = 1e-8;
        let fast = solve_with_step(&market, &opts, 1.0).unwrap();
        let slow = solve_with_step(&market, &opts, 0.3).unwrap();
        assert!(fast.converged() && slow.converged());
        assert!(
            slow.iterations > fast.iterations,
            "γ=0.3 took {} vs γ=1 {}",
            slow.iterations,
            fast.iterations
        );
    }
}
