//! Proportional response dynamics over sparse bids.
//!
//! The classic first-order method for large Fisher markets (Wu & Zhang;
//! analyzed at scale by Gao & Kroer, *First-Order Methods for Large-Scale
//! Market Equilibrium Computation*): each player splits its budget across
//! goods **in proportion to the utility each good currently earns it**.
//! For linear utilities, with per-good money `p̂_j = Σ_i b_ij` and
//! allocation `x_ij = b_ij·C_j/p̂_j`:
//!
//! ```text
//! b'_ij = B_i · (v_ij·x_ij) / Σ_k (v_ik·x_ik)
//! ```
//!
//! which is entropic mirror descent on the Shmyrev reformulation of the
//! Eisenberg–Gale program with step γ = 1 (see [`crate::mirror_descent`]
//! for γ < 1). For Leontief utilities the response spends proportionally
//! to `a_ij·p_j`, the equilibrium spending profile of a
//! perfect-complements player.
//!
//! Each iteration costs `O(nnz)` — linear in the number of (player,
//! resource) interests, not `N·M` — with no allocation in the inner loop,
//! which is what makes `10⁶`-player markets tractable (see the
//! scalability bench and EXPERIMENTS.md). The solve is driven by
//! [`crate::first_order`], so deadline budgets, damping/restart
//! guardrails, the telemetry schema, and the residual semantics
//! ([`crate::residual`]) are exactly those of the dense engine.
//!
//! Proportional response computes the **price-taking** (Fisher/Walrasian)
//! equilibrium. The dense Jacobi engine computes the *price-anticipating*
//! Nash equilibrium of the paper; the two coincide as `N → ∞` but differ
//! at small `N` — cross-validation therefore runs against the dense
//! price-taking reference in [`crate::fisher`] (see DESIGN.md
//! "Large-scale solvers").

use crate::equilibrium::EquilibriumOptions;
use crate::sparse::{SparseMarket, SparseOutcome};
use crate::Result;

/// Solves `market` with proportional response dynamics.
///
/// Honors [`EquilibriumOptions::max_iterations`], `price_tolerance`,
/// `record_history`, `parallel`, and `deadline`
/// ([`EquilibriumOptions::solver`] is ignored — calling this function
/// *is* the solver choice; use [`SparseMarket::solve`] to dispatch on the
/// option instead). Non-convergence is reported via
/// [`SparseOutcome::report`], not an error.
///
/// # Errors
///
/// Only degenerate-input errors propagate ([`crate::MarketError`]).
pub fn solve(market: &SparseMarket, options: &EquilibriumOptions) -> Result<SparseOutcome> {
    crate::first_order::solve_sparse(market, options, 1.0)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::sparse::SynthSpec;

    #[test]
    fn converges_on_a_synthetic_market_to_paper_grade_residual() {
        let market = SynthSpec::new(1000, 16, 1).generate().unwrap();
        let out = solve(&market, &EquilibriumOptions::large_scale()).unwrap();
        assert!(out.converged(), "residual {}", out.report.residual);
        assert!(out.report.residual <= 1e-6);
        assert!(out.report.is_clean(), "{:?}", out.report.recovery);
        assert!(out.efficiency() > 0.0);
    }

    #[test]
    fn dispatch_through_solve_matches_direct_call() {
        let market = SynthSpec::new(200, 8, 4).generate().unwrap();
        let opts = EquilibriumOptions::large_scale();
        let direct = solve(&market, &opts).unwrap();
        let dispatched = market.solve(&opts).unwrap();
        assert_eq!(direct.prices, dispatched.prices);
        assert_eq!(direct.iterations, dispatched.iterations);
    }
}
