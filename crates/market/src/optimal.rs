//! The *MaxEfficiency* oracle: direct social-welfare maximization.
//!
//! The paper's evaluation normalizes every mechanism against
//! `MaxEfficiency`, "the resource allocation maximizing system efficiency …
//! obtained by running an infeasible very fine-grained hill-climbing search
//! (recall that all utilities are concave)" (§6). This module implements
//! that search: an exchange hill climb that repeatedly moves a shrinking
//! quantum of each resource from the player with the smallest marginal
//! utility to the player with the largest, accepting only moves that
//! actually increase welfare.
//!
//! For concave utilities the continuous problem has no spurious local
//! optima, so the exchange climb converges to the global optimum up to the
//! final step granularity.
//!
//! # Cost model and parallelism
//!
//! The search keeps an `N × M` table of marginal utilities. It is built
//! once up front — in parallel under [`OptimalOptions::parallel`], since
//! each player's marginals depend only on that player's row — and then
//! *patched*: an accepted exchange changes exactly two players' rows, so
//! only those `2·M` entries are re-evaluated. Rejected moves restore the
//! exact prior allocation values (not `x − δ + δ`, which can drift in
//! floating point), keeping the table bit-exact against a fresh rebuild.
//! This turns the per-attempt scan cost from `O(N)` utility evaluations
//! into `O(N)` table reads, and makes the search's result independent of
//! the parallel policy. The pairwise swap pass remains serial: each
//! candidate trade is evaluated against the allocation left by the
//! previous one, a chain with no safe fan-out.

use rebudget_telemetry as telemetry;

use crate::deadline::DeadlineBudget;
use crate::par::{self, ParallelPolicy};
use crate::{AllocationMatrix, Market, MarketError, Result};

/// Tuning knobs for the welfare-maximizing search.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalOptions {
    /// First exchange quantum, as a fraction of each capacity.
    pub initial_step_fraction: f64,
    /// Final (finest) exchange quantum, as a fraction of each capacity.
    pub min_step_fraction: f64,
    /// Maximum full sweeps over the resources per step level.
    pub max_passes_per_level: usize,
    /// Also attempt pairwise cross-resource *swaps* (player A gives δ of
    /// one resource to player B in exchange for δ' of another). Utilities
    /// that are concave per axis but not jointly concave (e.g. bilinear
    /// interpolations of profiled surfaces) stall single-resource exchange
    /// at non-optimal points; swaps break those deadlocks. O(N²) per pass.
    pub enable_swaps: bool,
    /// How the marginal-utility table build executes. Purely an execution
    /// knob: results are bit-identical under every policy.
    pub parallel: ParallelPolicy,
    /// Wall-clock / iteration budget for the climb (one "iteration" = one
    /// pass over the resources at some step level). When it runs out the
    /// climb stops and returns its current allocation with
    /// [`OptimalOutcome::timed_out`] set. The default is unbounded.
    pub deadline: DeadlineBudget,
}

impl Default for OptimalOptions {
    fn default() -> Self {
        Self {
            initial_step_fraction: 0.25,
            min_step_fraction: 1e-4,
            max_passes_per_level: 64,
            enable_swaps: true,
            parallel: ParallelPolicy::Auto,
            deadline: DeadlineBudget::UNBOUNDED,
        }
    }
}

/// Result of the welfare-maximizing search.
#[derive(Debug, Clone)]
pub struct OptimalOutcome {
    /// The welfare-maximizing allocation found.
    pub allocation: AllocationMatrix,
    /// `Σ_i U_i(r_i)` at that allocation.
    pub efficiency: f64,
    /// Number of accepted exchange moves.
    pub moves: usize,
    /// The climb stopped early because its [`DeadlineBudget`] ran out;
    /// the allocation is the best found so far, not the refined optimum.
    pub timed_out: bool,
}

/// Finds the allocation maximizing `Σ_i U_i(r_i)` subject to
/// `Σ_i r_ij = C_j`, starting from an equal share.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use rebudget_market::{Market, Player, ResourceSpace};
/// use rebudget_market::optimal::{max_efficiency, OptimalOptions};
/// use rebudget_market::utility::LinearUtility;
///
/// # fn main() -> Result<(), rebudget_market::MarketError> {
/// let market = Market::new(
///     ResourceSpace::new(vec![10.0])?,
///     vec![
///         Player::new("low", 1.0, Arc::new(LinearUtility::new(vec![1.0])?)),
///         Player::new("high", 1.0, Arc::new(LinearUtility::new(vec![3.0])?)),
///     ],
/// )?;
/// let opt = max_efficiency(&market, &OptimalOptions::default())?;
/// // Linear utilities: the whole resource goes to its top valuer.
/// assert!(opt.allocation.get(1, 0) > 9.9);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`MarketError::Empty`] only for degenerate markets, which
/// [`Market::new`] already prevents; the error path exists because the
/// allocation constructors are fallible.
pub fn max_efficiency(market: &Market, options: &OptimalOptions) -> Result<OptimalOutcome> {
    let start = AllocationMatrix::equal_share(market.len(), market.resources().capacities())?;
    max_efficiency_from(market, options, start)
}

/// Like [`max_efficiency`], but climbing from an explicit starting
/// allocation — e.g. to polish a market-equilibrium allocation, since the
/// optimum is a maximum over *all* allocations and a good warm start can
/// only raise the result.
///
/// # Errors
///
/// Returns [`MarketError::DimensionMismatch`] if `start` does not match
/// the market's shape.
pub fn max_efficiency_from(
    market: &Market,
    options: &OptimalOptions,
    start: AllocationMatrix,
) -> Result<OptimalOutcome> {
    let n = market.len();
    let m = market.resources().len();
    if n == 0 {
        return Err(MarketError::Empty { what: "players" });
    }
    if start.players() != n || start.resources() != m {
        return Err(MarketError::DimensionMismatch {
            what: "starting allocation",
            expected: n * m,
            actual: start.players() * start.resources(),
        });
    }
    let capacities = market.resources().capacities();
    let mut alloc = start;
    let mut moves = 0usize;
    let mut timed_out = false;
    let mut clock = options.deadline.start();
    let _oracle_span = telemetry::span!("oracle");
    let mut passes: u64 = 0;

    let mut marginals = MarginalTable::build(market, &alloc, options.parallel);

    let mut frac = options.initial_step_fraction;
    'climb: while frac >= options.min_step_fraction {
        for _pass in 0..options.max_passes_per_level {
            let mut accepted_any = false;
            for j in 0..m {
                let step = frac * capacities[j];
                if try_exchange(market, &mut alloc, &mut marginals, j, step) {
                    moves += 1;
                    accepted_any = true;
                }
            }
            passes += 1;
            if telemetry::enabled() {
                telemetry::record(
                    telemetry::Event::new("oracle_pass")
                        .field_u64("pass", passes)
                        .field_f64("efficiency", crate::metrics::efficiency(market, &alloc))
                        .field_f64("step_fraction", frac),
                );
            }
            // Deadline: one resource pass = one charged iteration. The
            // allocation is feasible after every pass, so stopping here
            // returns a valid (coarser) optimum instead of spinning.
            if clock.charge(1) {
                timed_out = true;
                break 'climb;
            }
            if !accepted_any {
                break;
            }
        }
        if options.enable_swaps && m >= 2 && frac >= options.min_step_fraction * 8.0 {
            moves += swap_pass(market, &mut alloc, &mut marginals, capacities, frac);
            if clock.charge(1) {
                timed_out = true;
                break 'climb;
            }
        }
        frac *= 0.5;
    }

    let efficiency = crate::metrics::efficiency(market, &alloc);
    if telemetry::enabled() {
        let registry = &telemetry::global().registry;
        registry.counter("oracle.climbs").incr();
        registry.counter("oracle.passes").add(passes);
        registry.counter("oracle.moves").add(moves as u64);
    }
    Ok(OptimalOutcome {
        allocation: alloc,
        efficiency,
        moves,
        timed_out,
    })
}

/// The cached `N × M` table of marginal utilities
/// `∂U_i/∂r_ij` at the current allocation.
///
/// Built in parallel (each row depends only on that player's allocation
/// row), then kept exact by patching the two affected rows after every
/// accepted move. See the module docs for why this is both the serial
/// speedup and the parallelization point of the oracle.
#[derive(Debug)]
struct MarginalTable {
    m: usize,
    values: Vec<f64>,
}

impl MarginalTable {
    fn build(market: &Market, alloc: &AllocationMatrix, policy: ParallelPolicy) -> Self {
        let n = market.len();
        let m = market.resources().len();
        let threads = policy.resolved_threads(n);
        let rows = par::map_indexed(threads, n, |i| {
            let utility = market.players()[i].utility();
            let row = alloc.row(i);
            (0..m)
                .map(|j| utility.marginal(row, j))
                .collect::<Vec<f64>>()
        });
        Self {
            m,
            values: rows.concat(),
        }
    }

    fn get(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.m + j]
    }

    /// Re-evaluates player `i`'s marginals after its allocation row
    /// changed.
    fn refresh_row(&mut self, market: &Market, alloc: &AllocationMatrix, i: usize) {
        let utility = market.players()[i].utility();
        let row = alloc.row(i);
        for j in 0..self.m {
            self.values[i * self.m + j] = utility.marginal(row, j);
        }
    }
}

/// One full pass of pairwise cross-resource swaps at quantum fraction
/// `frac`: for every ordered player pair `(a, b)` and resource pair
/// `(j, k)`, try trading `frac·C_j` of `j` (a→b) for `frac·C_k` of `k`
/// (b→a), keeping only welfare-improving trades. Returns accepted swaps.
fn swap_pass(
    market: &Market,
    alloc: &mut AllocationMatrix,
    marginals: &mut MarginalTable,
    capacities: &[f64],
    frac: f64,
) -> usize {
    let n = market.len();
    let m = capacities.len();
    let mut accepted = 0usize;
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            for j in 0..m {
                for k in 0..m {
                    if j == k {
                        continue;
                    }
                    let aj0 = alloc.get(a, j);
                    let ak0 = alloc.get(a, k);
                    let bj0 = alloc.get(b, j);
                    let bk0 = alloc.get(b, k);
                    let dj = (frac * capacities[j]).min(aj0);
                    let dk = (frac * capacities[k]).min(bk0);
                    if dj <= 0.0 || dk <= 0.0 {
                        continue;
                    }
                    let ua0 = market.players()[a].utility_of(alloc.row(a));
                    let ub0 = market.players()[b].utility_of(alloc.row(b));
                    alloc.set(a, j, aj0 - dj);
                    alloc.set(b, j, bj0 + dj);
                    alloc.set(b, k, bk0 - dk);
                    alloc.set(a, k, ak0 + dk);
                    let ua1 = market.players()[a].utility_of(alloc.row(a));
                    let ub1 = market.players()[b].utility_of(alloc.row(b));
                    let gain = (ua1 + ub1) - (ua0 + ub0);
                    if gain.is_finite() && gain > 0.0 {
                        accepted += 1;
                        marginals.refresh_row(market, alloc, a);
                        marginals.refresh_row(market, alloc, b);
                    } else {
                        // Restore the exact prior values (adding dj back to
                        // a subtracted value can drift in floating point).
                        alloc.set(a, j, aj0);
                        alloc.set(b, j, bj0);
                        alloc.set(b, k, bk0);
                        alloc.set(a, k, ak0);
                    }
                }
            }
        }
    }
    accepted
}

/// Attempts one exchange of `step` units of resource `j` from the player
/// with the smallest marginal utility (that still holds at least some of
/// `j`) to the player with the largest. Returns whether the move was
/// accepted (i.e. it strictly improved welfare).
fn try_exchange(
    market: &Market,
    alloc: &mut AllocationMatrix,
    marginals: &mut MarginalTable,
    j: usize,
    step: f64,
) -> bool {
    let n = market.len();
    let mut hi = 0usize;
    let mut hi_m = f64::NEG_INFINITY;
    let mut lo = usize::MAX;
    let mut lo_m = f64::INFINITY;
    for i in 0..n {
        let marginal = marginals.get(i, j);
        // Guardrail: a faulty utility can report NaN/∞ marginals; those
        // players are excluded from the exchange scan so a single bad
        // evaluation cannot poison the climb.
        if !marginal.is_finite() {
            continue;
        }
        if marginal > hi_m {
            hi_m = marginal;
            hi = i;
        }
        if alloc.get(i, j) > 0.0 && marginal < lo_m {
            lo_m = marginal;
            lo = i;
        }
    }
    if lo == usize::MAX || lo == hi || hi_m <= lo_m {
        return false;
    }
    let lo_before = alloc.get(lo, j);
    let hi_before = alloc.get(hi, j);
    let amount = step.min(lo_before);
    if amount <= 0.0 {
        return false;
    }

    let u_lo_before = market.players()[lo].utility_of(alloc.row(lo));
    let u_hi_before = market.players()[hi].utility_of(alloc.row(hi));
    alloc.set(lo, j, lo_before - amount);
    alloc.set(hi, j, hi_before + amount);
    let u_lo_after = market.players()[lo].utility_of(alloc.row(lo));
    let u_hi_after = market.players()[hi].utility_of(alloc.row(hi));

    let delta = (u_lo_after - u_lo_before) + (u_hi_after - u_hi_before);
    // `delta > 0.0` is false for NaN, so a non-finite evaluation rejects
    // the move and restores the exact prior allocation below.
    if delta.is_finite() && delta > 0.0 {
        marginals.refresh_row(market, alloc, lo);
        marginals.refresh_row(market, alloc, hi);
        true
    } else {
        // Restore the exact prior values (adding `amount` back to a
        // subtracted value can drift in floating point).
        alloc.set(lo, j, lo_before);
        alloc.set(hi, j, hi_before);
        false
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::utility::{LinearUtility, SeparableUtility};
    use crate::{Player, ResourceSpace};
    use std::sync::Arc;

    #[test]
    fn linear_utilities_winner_takes_all() {
        // OPT for linear utilities gives each resource wholly to the player
        // valuing it most (see the proof of Theorem 1 in the appendix).
        let caps = [10.0, 10.0];
        let resources = ResourceSpace::new(caps.to_vec()).unwrap();
        let market = Market::new(
            resources,
            vec![
                Player::new(
                    "a",
                    1.0,
                    Arc::new(LinearUtility::new(vec![3.0, 1.0]).unwrap()),
                ),
                Player::new(
                    "b",
                    1.0,
                    Arc::new(LinearUtility::new(vec![1.0, 2.0]).unwrap()),
                ),
            ],
        )
        .unwrap();
        let out = max_efficiency(&market, &OptimalOptions::default()).unwrap();
        assert!(
            (out.efficiency - (30.0 + 20.0)).abs() / 50.0 < 0.01,
            "efficiency {} should approach 50",
            out.efficiency
        );
        assert!(out.allocation.get(0, 0) > 9.9);
        assert!(out.allocation.get(1, 1) > 9.9);
    }

    #[test]
    fn symmetric_concave_stays_balanced() {
        let caps = [8.0];
        let resources = ResourceSpace::new(caps.to_vec()).unwrap();
        let u = || Arc::new(SeparableUtility::proportional(&[1.0], &caps).unwrap());
        let market = Market::new(
            resources,
            vec![Player::new("a", 1.0, u()), Player::new("b", 1.0, u())],
        )
        .unwrap();
        let out = max_efficiency(&market, &OptimalOptions::default()).unwrap();
        // sqrt is strictly concave: equal split is optimal.
        assert!((out.allocation.get(0, 0) - 4.0).abs() < 0.1);
        assert!((out.allocation.get(1, 0) - 4.0).abs() < 0.1);
        assert!((out.efficiency - 2.0 * (0.5f64).sqrt()).abs() < 1e-3);
    }

    #[test]
    fn allocation_remains_exhaustive() {
        let caps = [16.0, 80.0];
        let resources = ResourceSpace::new(caps.to_vec()).unwrap();
        let market = Market::new(
            resources,
            vec![
                Player::new(
                    "a",
                    1.0,
                    Arc::new(SeparableUtility::proportional(&[0.9, 0.1], &caps).unwrap()),
                ),
                Player::new(
                    "b",
                    1.0,
                    Arc::new(SeparableUtility::proportional(&[0.2, 0.8], &caps).unwrap()),
                ),
                Player::new(
                    "c",
                    1.0,
                    Arc::new(SeparableUtility::proportional(&[0.5, 0.5], &caps).unwrap()),
                ),
            ],
        )
        .unwrap();
        let out = max_efficiency(&market, &OptimalOptions::default()).unwrap();
        assert!(out.allocation.is_exhaustive(&caps, 1e-9));
    }

    #[test]
    fn result_is_independent_of_parallel_policy() {
        let caps = [16.0, 80.0];
        let resources = ResourceSpace::new(caps.to_vec()).unwrap();
        let players = (0..40)
            .map(|i| {
                let w0 = 0.05 + 0.9 * (i as f64 * 0.31).fract();
                Player::new(
                    format!("p{i}"),
                    1.0,
                    Arc::new(SeparableUtility::proportional(&[w0, 1.0 - w0], &caps).unwrap())
                        as Arc<dyn crate::Utility>,
                )
            })
            .collect::<Vec<_>>();
        let market = Market::new(resources, players).unwrap();
        let run = |policy: ParallelPolicy| {
            let options = OptimalOptions {
                parallel: policy,
                ..OptimalOptions::default()
            };
            max_efficiency(&market, &options).unwrap()
        };
        let serial = run(ParallelPolicy::Serial);
        let threaded = run(ParallelPolicy::Threads(4));
        assert_eq!(serial.moves, threaded.moves);
        assert_eq!(
            serial.efficiency.to_bits(),
            threaded.efficiency.to_bits(),
            "oracle must be bit-identical across policies"
        );
        for i in 0..market.len() {
            for j in 0..caps.len() {
                assert_eq!(
                    serial.allocation.get(i, j).to_bits(),
                    threaded.allocation.get(i, j).to_bits()
                );
            }
        }
    }

    #[test]
    fn beats_equal_share_for_asymmetric_tastes() {
        let caps = [16.0, 80.0];
        let resources = ResourceSpace::new(caps.to_vec()).unwrap();
        let market = Market::new(
            resources,
            vec![
                Player::new(
                    "a",
                    1.0,
                    Arc::new(SeparableUtility::proportional(&[1.0, 0.0], &caps).unwrap()),
                ),
                Player::new(
                    "b",
                    1.0,
                    Arc::new(SeparableUtility::proportional(&[0.0, 1.0], &caps).unwrap()),
                ),
            ],
        )
        .unwrap();
        let equal = AllocationMatrix::equal_share(2, &caps).unwrap();
        let equal_eff = crate::metrics::efficiency(&market, &equal);
        let out = max_efficiency(&market, &OptimalOptions::default()).unwrap();
        assert!(out.efficiency > equal_eff);
    }
}
