//! The budget-constrained hill-climbing bidder of §4.1.2.
//!
//! Given the sum of the other players' bids `y_ij` on each resource (held
//! fixed for the duration of the response, per §2 of the paper), a player
//! predicts its allocation as `r_ij = b_ij / (b_ij + y_ij) · C_j` (Eq. 2) and
//! climbs toward the bid vector that maximizes its utility subject to its
//! budget:
//!
//! 1. split the budget into equal bids; set the shift amount `S` to half a
//!    bid;
//! 2. compute the marginal utility of money `λ_ij = ∂U_i/∂b_ij` for every
//!    resource; move `S` from the resource with the lowest `λ` to the one
//!    with the highest;
//! 3. halve `S` and repeat until the `λ`s agree within 5% or `S` drops below
//!    1% of the budget.
//!
//! At the optimum, Eq. 4 of the paper holds: all resources with non-zero
//! bids share a common `λ_i`, and zero-bid resources have smaller `λ`.

use crate::pricing::predicted_share;
use crate::Utility;

/// Tuning knobs for the hill-climbing bidder.
#[derive(Debug, Clone, PartialEq)]
pub struct BiddingOptions {
    /// Stop when `(λ_max − λ_min) / λ_max` falls below this (paper: 5%).
    pub lambda_tolerance: f64,
    /// Stop when the shift amount `S` falls below this fraction of the
    /// budget (paper: 1%).
    pub min_step_fraction: f64,
}

impl Default for BiddingOptions {
    fn default() -> Self {
        Self {
            lambda_tolerance: 0.05,
            min_step_fraction: 0.01,
        }
    }
}

/// The outcome of one best-response computation.
#[derive(Debug, Clone, PartialEq)]
pub struct BestResponse {
    /// The chosen bid per resource; sums to the budget.
    pub bids: Vec<f64>,
    /// The marginal utility of money `λ_ij` per resource at those bids.
    pub lambdas: Vec<f64>,
    /// Number of shift moves performed.
    pub moves: usize,
}

impl BestResponse {
    /// The player's marginal utility of additional budget: the largest
    /// `λ_ij` across resources. This is the per-player `λ_i` that MUR and
    /// the ReBudget re-assignment rule consume (§3.1, §4.2).
    pub fn lambda(&self) -> f64 {
        self.lambdas.iter().fold(0.0_f64, |a, &b| a.max(b))
    }
}

/// Marginal utility of money on resource `j`:
/// `λ_ij = ∂U/∂r_ij · ∂r_ij/∂b_ij` where
/// `∂r_ij/∂b_ij = y_ij · C_j / (b_ij + y_ij)²` (see Eq. 7 in the paper's
/// appendix).
fn lambda_of(
    utility: &dyn Utility,
    allocation: &[f64],
    bid: f64,
    others: f64,
    capacity: f64,
    j: usize,
) -> f64 {
    let denom = (bid + others).max(1e-12);
    let dr_db = others * capacity / (denom * denom);
    utility.marginal(allocation, j) * dr_db
}

/// Computes a player's best response to the rest of the market.
///
/// `others` holds `y_ij` — the total bids of everyone else per resource —
/// and `capacities` the resource capacities `C_j`. The returned bids always
/// sum to `budget` (a zero budget yields all-zero bids).
///
/// This is exactly the exponential-back-off hill climb of §4.1.2; it takes
/// `O(log(1/min_step_fraction))` moves.
///
/// # Examples
///
/// ```
/// use rebudget_market::bidding::{best_response, BiddingOptions};
/// use rebudget_market::utility::SeparableUtility;
///
/// # fn main() -> Result<(), rebudget_market::MarketError> {
/// let caps = [16.0, 80.0];
/// // A player who cares mostly about resource 0...
/// let u = SeparableUtility::proportional(&[0.9, 0.1], &caps)?;
/// let r = best_response(&u, 100.0, &[40.0, 40.0], &caps, &BiddingOptions::default());
/// // ...skews its money there.
/// assert!(r.bids[0] > r.bids[1]);
/// assert!((r.bids.iter().sum::<f64>() - 100.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn best_response(
    utility: &dyn Utility,
    budget: f64,
    others: &[f64],
    capacities: &[f64],
    options: &BiddingOptions,
) -> BestResponse {
    let m = capacities.len();
    debug_assert_eq!(others.len(), m, "others/capacities length mismatch");

    if budget <= 0.0 || m == 0 {
        return BestResponse {
            bids: vec![0.0; m],
            lambdas: vec![0.0; m],
            moves: 0,
        };
    }

    // Step 1: equal split; S = half of one bid.
    let mut bids = vec![budget / m as f64; m];
    let mut step = budget / (2.0 * m as f64);
    let min_step = options.min_step_fraction * budget;
    let mut moves = 0;

    let eval_lambdas = |bids: &[f64]| -> Vec<f64> {
        let allocation: Vec<f64> = (0..m)
            .map(|j| predicted_share(bids[j], others[j], capacities[j]))
            .collect();
        (0..m)
            .map(|j| lambda_of(utility, &allocation, bids[j], others[j], capacities[j], j))
            .collect()
    };

    let mut lambdas = eval_lambdas(&bids);
    if m == 1 {
        // A single resource leaves nothing to re-balance.
        return BestResponse {
            bids,
            lambdas,
            moves,
        };
    }

    while step >= min_step {
        // Step 2: move S from the lowest-λ resource with money to the
        // highest-λ resource.
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        let (mut lo_l, mut hi_l) = (f64::INFINITY, f64::NEG_INFINITY);
        for j in 0..m {
            if lambdas[j] > hi_l {
                hi_l = lambdas[j];
                hi = j;
            }
            if bids[j] > 0.0 && lambdas[j] < lo_l {
                lo_l = lambdas[j];
                lo = j;
            }
        }
        if lo == usize::MAX || lo == hi {
            break;
        }
        // Condition (a): λs already agree within tolerance.
        if hi_l <= 0.0 || (hi_l - lo_l) <= options.lambda_tolerance * hi_l {
            break;
        }
        let amount = step.min(bids[lo]);
        bids[lo] -= amount;
        bids[hi] += amount;
        moves += 1;
        let new_lambdas = eval_lambdas(&bids);
        // A move past the optimum would lower the top λ ordering; the
        // shrinking step recovers, exactly as in the paper.
        lambdas = new_lambdas;
        // Step 3: halve S.
        step *= 0.5;
    }

    BestResponse {
        bids,
        lambdas,
        moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::{LinearUtility, SeparableUtility};

    #[test]
    fn zero_budget_bids_nothing() {
        let u = LinearUtility::new(vec![1.0, 1.0]).unwrap();
        let r = best_response(&u, 0.0, &[5.0, 5.0], &[10.0, 10.0], &BiddingOptions::default());
        assert_eq!(r.bids, vec![0.0, 0.0]);
        assert_eq!(r.lambda(), 0.0);
    }

    #[test]
    fn bids_always_sum_to_budget() {
        let u = SeparableUtility::proportional(&[0.7, 0.3], &[16.0, 80.0]).unwrap();
        for budget in [1.0, 50.0, 100.0, 1000.0] {
            let r = best_response(
                &u,
                budget,
                &[40.0, 10.0],
                &[16.0, 80.0],
                &BiddingOptions::default(),
            );
            let total: f64 = r.bids.iter().sum();
            assert!(
                (total - budget).abs() < 1e-9,
                "budget {budget} produced total {total}"
            );
            assert!(r.bids.iter().all(|&b| b >= 0.0));
        }
    }

    #[test]
    fn skews_toward_preferred_resource() {
        // Player cares almost only about resource 0.
        let u = SeparableUtility::proportional(&[0.95, 0.05], &[10.0, 10.0]).unwrap();
        let r = best_response(
            &u,
            100.0,
            &[50.0, 50.0],
            &[10.0, 10.0],
            &BiddingOptions::default(),
        );
        assert!(
            r.bids[0] > 2.0 * r.bids[1],
            "expected skew toward resource 0, got {:?}",
            r.bids
        );
    }

    #[test]
    fn improves_on_equal_split() {
        let caps = [16.0, 80.0];
        let others = [30.0, 70.0];
        let u = SeparableUtility::proportional(&[0.9, 0.1], &caps).unwrap();
        let value_at = |bids: &[f64]| {
            let alloc: Vec<f64> = (0..2)
                .map(|j| predicted_share(bids[j], others[j], caps[j]))
                .collect();
            crate::Utility::value(&u, &alloc)
        };
        let equal = value_at(&[50.0, 50.0]);
        let r = best_response(&u, 100.0, &others, &caps, &BiddingOptions::default());
        assert!(
            value_at(&r.bids) >= equal - 1e-12,
            "best response must not be worse than equal split"
        );
    }

    #[test]
    fn lambdas_nearly_equal_at_optimum() {
        let caps = [16.0, 80.0];
        let u = SeparableUtility::proportional(&[0.5, 0.5], &caps).unwrap();
        let opts = BiddingOptions {
            lambda_tolerance: 0.05,
            min_step_fraction: 0.0005,
        };
        let r = best_response(&u, 100.0, &[60.0, 40.0], &caps, &opts);
        let (lo, hi) = (
            r.lambdas.iter().cloned().fold(f64::INFINITY, f64::min),
            r.lambda(),
        );
        assert!(
            (hi - lo) / hi < 0.10,
            "λ spread too large: {:?} (bids {:?})",
            r.lambdas,
            r.bids
        );
    }

    #[test]
    fn single_resource_spends_everything() {
        let u = LinearUtility::new(vec![1.0]).unwrap();
        let r = best_response(&u, 25.0, &[10.0], &[5.0], &BiddingOptions::default());
        assert_eq!(r.bids, vec![25.0]);
        assert_eq!(r.moves, 0);
    }

    #[test]
    fn sole_bidder_lambda_is_zero() {
        // With y_ij = 0 the player already owns the whole resource; extra
        // money there is worthless.
        let u = LinearUtility::new(vec![1.0, 1.0]).unwrap();
        let r = best_response(&u, 10.0, &[0.0, 5.0], &[4.0, 4.0], &BiddingOptions::default());
        assert_eq!(r.lambdas[0], 0.0);
        // Money should drift toward the contested resource.
        assert!(r.bids[1] > r.bids[0]);
    }
}
