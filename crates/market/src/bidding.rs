//! The budget-constrained hill-climbing bidder of §4.1.2.
//!
//! Given the sum of the other players' bids `y_ij` on each resource (held
//! fixed for the duration of the response, per §2 of the paper), a player
//! predicts its allocation as `r_ij = b_ij / (b_ij + y_ij) · C_j` (Eq. 2) and
//! climbs toward the bid vector that maximizes its utility subject to its
//! budget:
//!
//! 1. split the budget into equal bids; set the shift amount `S` to half a
//!    bid;
//! 2. compute the marginal utility of money `λ_ij = ∂U_i/∂b_ij` for every
//!    resource; move `S` from the resource with the lowest `λ` to the one
//!    with the highest;
//! 3. halve `S` and repeat until the `λ`s agree within 5% or `S` drops below
//!    1% of the budget.
//!
//! At the optimum, Eq. 4 of the paper holds: all resources with non-zero
//! bids share a common `λ_i`, and zero-bid resources have smaller `λ`.

use crate::Utility;

/// Tuning knobs for the hill-climbing bidder.
#[derive(Debug, Clone, PartialEq)]
pub struct BiddingOptions {
    /// Stop when `(λ_max − λ_min) / λ_max` falls below this (paper: 5%).
    pub lambda_tolerance: f64,
    /// Stop when the shift amount `S` falls below this fraction of the
    /// budget (paper: 1%).
    pub min_step_fraction: f64,
}

impl Default for BiddingOptions {
    fn default() -> Self {
        Self {
            lambda_tolerance: 0.05,
            min_step_fraction: 0.01,
        }
    }
}

/// The outcome of one best-response computation.
#[derive(Debug, Clone, PartialEq)]
pub struct BestResponse {
    /// The chosen bid per resource; sums to the budget.
    pub bids: Vec<f64>,
    /// The marginal utility of money `λ_ij` per resource at those bids.
    pub lambdas: Vec<f64>,
    /// Number of shift moves performed.
    pub moves: usize,
}

impl BestResponse {
    /// The player's marginal utility of additional budget: the largest
    /// `λ_ij` across resources. This is the per-player `λ_i` that MUR and
    /// the ReBudget re-assignment rule consume (§3.1, §4.2).
    pub fn lambda(&self) -> f64 {
        self.lambdas.iter().fold(0.0_f64, |a, &b| a.max(b))
    }
}

/// Marginal utility of money on resource `j`:
/// `λ_ij = ∂U/∂r_ij · ∂r_ij/∂b_ij` where
/// `∂r_ij/∂b_ij = y_ij · C_j / (b_ij + y_ij)²` (see Eq. 7 in the paper's
/// appendix). `total` is the memoized denominator `b_ij + y_ij`.
fn lambda_from_total(
    utility: &dyn Utility,
    allocation: &[f64],
    total: f64,
    others: f64,
    capacity: f64,
    j: usize,
) -> f64 {
    let denom = total.max(1e-12);
    let dr_db = others * capacity / (denom * denom);
    utility.marginal(allocation, j) * dr_db
}

/// Eq. 2's predicted share computed from the memoized total `b_ij + y_ij`
/// (same value as [`crate::pricing::predicted_share`], denominator hoisted).
fn share_from_total(bid: f64, total: f64, capacity: f64) -> f64 {
    if total <= 0.0 {
        0.0
    } else {
        bid / total * capacity
    }
}

/// Reusable buffers for repeated best-response computations.
///
/// The equilibrium engine calls the bidder `N` times per iteration; with a
/// fresh scratch per call the hill climb would allocate two vectors per
/// probe. One `BidScratch` per worker thread makes the whole hot loop
/// allocation-free: buffers are created once and resized only if the
/// resource count grows.
#[derive(Debug, Clone, Default)]
pub struct BidScratch {
    /// Predicted allocation `r_ij` at the current bids.
    allocation: Vec<f64>,
    /// Marginal utility of money `λ_ij` per resource.
    lambdas: Vec<f64>,
    /// Memoized denominators `b_ij + y_ij` (shared by the predicted-share
    /// and λ expressions, recomputed only for resources whose bid moved).
    totals: Vec<f64>,
}

impl BidScratch {
    /// Creates a scratch sized for `m` resources.
    pub fn new(m: usize) -> Self {
        Self {
            allocation: vec![0.0; m],
            lambdas: vec![0.0; m],
            totals: vec![0.0; m],
        }
    }

    fn reset(&mut self, m: usize) {
        self.allocation.clear();
        self.allocation.resize(m, 0.0);
        self.lambdas.clear();
        self.lambdas.resize(m, 0.0);
        self.totals.clear();
        self.totals.resize(m, 0.0);
    }

    /// The `λ_ij` vector left by the last [`best_response_into`] call.
    pub fn lambdas(&self) -> &[f64] {
        &self.lambdas
    }

    /// The per-player `λ_i` (largest `λ_ij`) left by the last
    /// [`best_response_into`] call.
    pub fn lambda(&self) -> f64 {
        self.lambdas.iter().fold(0.0_f64, |a, &b| a.max(b))
    }
}

/// Computes a player's best response to the rest of the market.
///
/// `others` holds `y_ij` — the total bids of everyone else per resource —
/// and `capacities` the resource capacities `C_j`. The returned bids always
/// sum to `budget` (a zero budget yields all-zero bids).
///
/// This is exactly the exponential-back-off hill climb of §4.1.2; it takes
/// `O(log(1/min_step_fraction))` moves.
///
/// # Examples
///
/// ```
/// use rebudget_market::bidding::{best_response, BiddingOptions};
/// use rebudget_market::utility::SeparableUtility;
///
/// # fn main() -> Result<(), rebudget_market::MarketError> {
/// let caps = [16.0, 80.0];
/// // A player who cares mostly about resource 0...
/// let u = SeparableUtility::proportional(&[0.9, 0.1], &caps)?;
/// let r = best_response(&u, 100.0, &[40.0, 40.0], &caps, &BiddingOptions::default());
/// // ...skews its money there.
/// assert!(r.bids[0] > r.bids[1]);
/// assert!((r.bids.iter().sum::<f64>() - 100.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn best_response(
    utility: &dyn Utility,
    budget: f64,
    others: &[f64],
    capacities: &[f64],
    options: &BiddingOptions,
) -> BestResponse {
    let m = capacities.len();
    let mut scratch = BidScratch::new(m);
    let mut bids = vec![0.0; m];
    let moves = best_response_into(
        utility,
        budget,
        others,
        capacities,
        options,
        &mut scratch,
        &mut bids,
    );
    BestResponse {
        bids,
        lambdas: scratch.lambdas,
        moves,
    }
}

/// Allocation-free variant of [`best_response`]: writes the chosen bids
/// into `bids_out` and leaves the final `λ_ij` vector in `scratch`
/// (read it back via [`BidScratch::lambdas`]). Returns the number of
/// shift moves performed.
///
/// The computed values are identical to [`best_response`] — the scratch
/// only changes *where* intermediates live, not what is computed. Per
/// hill-climb probe, only the two resources whose bids moved have their
/// predicted share and memoized `b + y` denominator recomputed; the `λ`s
/// are re-evaluated for every resource because a (generally non-separable)
/// utility's marginal at one resource may depend on the whole allocation.
///
/// # Panics
///
/// Panics if `bids_out.len() != capacities.len()` (debug builds also check
/// `others`).
pub fn best_response_into(
    utility: &dyn Utility,
    budget: f64,
    others: &[f64],
    capacities: &[f64],
    options: &BiddingOptions,
    scratch: &mut BidScratch,
    bids_out: &mut [f64],
) -> usize {
    let m = capacities.len();
    debug_assert_eq!(others.len(), m, "others/capacities length mismatch");
    assert_eq!(bids_out.len(), m, "bids_out/capacities length mismatch");
    scratch.reset(m);

    if budget <= 0.0 || m == 0 {
        bids_out.fill(0.0);
        return 0;
    }

    // Step 1: equal split; S = half of one bid.
    bids_out.fill(budget / m as f64);
    let mut step = budget / (2.0 * m as f64);
    let min_step = options.min_step_fraction * budget;
    let mut moves = 0;

    // Full evaluation at the starting point: memoize the `b + y`
    // denominators, derive shares, then λs.
    for j in 0..m {
        scratch.totals[j] = bids_out[j] + others[j];
        scratch.allocation[j] = share_from_total(bids_out[j], scratch.totals[j], capacities[j]);
    }
    for j in 0..m {
        scratch.lambdas[j] = lambda_from_total(
            utility,
            &scratch.allocation,
            scratch.totals[j],
            others[j],
            capacities[j],
            j,
        );
    }
    if m == 1 {
        // A single resource leaves nothing to re-balance.
        return moves;
    }

    while step >= min_step {
        // Step 2: move S from the lowest-λ resource with money to the
        // highest-λ resource.
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        let (mut lo_l, mut hi_l) = (f64::INFINITY, f64::NEG_INFINITY);
        for j in 0..m {
            if scratch.lambdas[j] > hi_l {
                hi_l = scratch.lambdas[j];
                hi = j;
            }
            if bids_out[j] > 0.0 && scratch.lambdas[j] < lo_l {
                lo_l = scratch.lambdas[j];
                lo = j;
            }
        }
        if lo == usize::MAX || lo == hi {
            break;
        }
        // Condition (a): λs already agree within tolerance.
        if hi_l <= 0.0 || (hi_l - lo_l) <= options.lambda_tolerance * hi_l {
            break;
        }
        let amount = step.min(bids_out[lo]);
        bids_out[lo] -= amount;
        bids_out[hi] += amount;
        moves += 1;
        // Only lo and hi changed: refresh their denominators and shares,
        // then re-evaluate every λ against the updated allocation. A move
        // past the optimum would lower the top λ ordering; the shrinking
        // step recovers, exactly as in the paper.
        for j in [lo, hi] {
            scratch.totals[j] = bids_out[j] + others[j];
            scratch.allocation[j] = share_from_total(bids_out[j], scratch.totals[j], capacities[j]);
        }
        for j in 0..m {
            scratch.lambdas[j] = lambda_from_total(
                utility,
                &scratch.allocation,
                scratch.totals[j],
                others[j],
                capacities[j],
                j,
            );
        }
        // Step 3: halve S.
        step *= 0.5;
    }

    moves
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::pricing::predicted_share;
    use crate::utility::{LinearUtility, SeparableUtility};

    #[test]
    fn zero_budget_bids_nothing() {
        let u = LinearUtility::new(vec![1.0, 1.0]).unwrap();
        let r = best_response(
            &u,
            0.0,
            &[5.0, 5.0],
            &[10.0, 10.0],
            &BiddingOptions::default(),
        );
        assert_eq!(r.bids, vec![0.0, 0.0]);
        assert_eq!(r.lambda(), 0.0);
    }

    #[test]
    fn bids_always_sum_to_budget() {
        let u = SeparableUtility::proportional(&[0.7, 0.3], &[16.0, 80.0]).unwrap();
        for budget in [1.0, 50.0, 100.0, 1000.0] {
            let r = best_response(
                &u,
                budget,
                &[40.0, 10.0],
                &[16.0, 80.0],
                &BiddingOptions::default(),
            );
            let total: f64 = r.bids.iter().sum();
            assert!(
                (total - budget).abs() < 1e-9,
                "budget {budget} produced total {total}"
            );
            assert!(r.bids.iter().all(|&b| b >= 0.0));
        }
    }

    #[test]
    fn skews_toward_preferred_resource() {
        // Player cares almost only about resource 0.
        let u = SeparableUtility::proportional(&[0.95, 0.05], &[10.0, 10.0]).unwrap();
        let r = best_response(
            &u,
            100.0,
            &[50.0, 50.0],
            &[10.0, 10.0],
            &BiddingOptions::default(),
        );
        assert!(
            r.bids[0] > 2.0 * r.bids[1],
            "expected skew toward resource 0, got {:?}",
            r.bids
        );
    }

    #[test]
    fn improves_on_equal_split() {
        let caps = [16.0, 80.0];
        let others = [30.0, 70.0];
        let u = SeparableUtility::proportional(&[0.9, 0.1], &caps).unwrap();
        let value_at = |bids: &[f64]| {
            let alloc: Vec<f64> = (0..2)
                .map(|j| predicted_share(bids[j], others[j], caps[j]))
                .collect();
            crate::Utility::value(&u, &alloc)
        };
        let equal = value_at(&[50.0, 50.0]);
        let r = best_response(&u, 100.0, &others, &caps, &BiddingOptions::default());
        assert!(
            value_at(&r.bids) >= equal - 1e-12,
            "best response must not be worse than equal split"
        );
    }

    #[test]
    fn lambdas_nearly_equal_at_optimum() {
        let caps = [16.0, 80.0];
        let u = SeparableUtility::proportional(&[0.5, 0.5], &caps).unwrap();
        let opts = BiddingOptions {
            lambda_tolerance: 0.05,
            min_step_fraction: 0.0005,
        };
        let r = best_response(&u, 100.0, &[60.0, 40.0], &caps, &opts);
        let (lo, hi) = (
            r.lambdas.iter().cloned().fold(f64::INFINITY, f64::min),
            r.lambda(),
        );
        assert!(
            (hi - lo) / hi < 0.10,
            "λ spread too large: {:?} (bids {:?})",
            r.lambdas,
            r.bids
        );
    }

    #[test]
    fn single_resource_spends_everything() {
        let u = LinearUtility::new(vec![1.0]).unwrap();
        let r = best_response(&u, 25.0, &[10.0], &[5.0], &BiddingOptions::default());
        assert_eq!(r.bids, vec![25.0]);
        assert_eq!(r.moves, 0);
    }

    #[test]
    fn into_variant_matches_allocating_variant_bitwise() {
        let caps = [16.0, 80.0, 24.0];
        let u = SeparableUtility::proportional(&[0.5, 0.3, 0.2], &caps).unwrap();
        let mut scratch = BidScratch::new(caps.len());
        for (budget, others) in [
            (100.0, [40.0, 10.0, 5.0]),
            (3.0, [0.0, 80.0, 0.1]),
            (0.0, [1.0, 1.0, 1.0]),
            (250.0, [25.0, 25.0, 25.0]),
        ] {
            let reference = best_response(&u, budget, &others, &caps, &BiddingOptions::default());
            let mut bids = vec![f64::NAN; caps.len()];
            let moves = best_response_into(
                &u,
                budget,
                &others,
                &caps,
                &BiddingOptions::default(),
                &mut scratch,
                &mut bids,
            );
            assert_eq!(moves, reference.moves);
            assert!(
                bids.iter()
                    .zip(&reference.bids)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "bids diverge: {bids:?} vs {:?}",
                reference.bids
            );
            assert!(scratch
                .lambdas()
                .iter()
                .zip(&reference.lambdas)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            assert_eq!(scratch.lambda().to_bits(), reference.lambda().to_bits());
        }
    }

    #[test]
    fn scratch_is_reusable_across_sizes() {
        let mut scratch = BidScratch::default();
        let u2 = LinearUtility::new(vec![1.0, 2.0]).unwrap();
        let mut bids2 = [0.0; 2];
        best_response_into(
            &u2,
            10.0,
            &[1.0, 1.0],
            &[4.0, 4.0],
            &BiddingOptions::default(),
            &mut scratch,
            &mut bids2,
        );
        assert!((bids2.iter().sum::<f64>() - 10.0).abs() < 1e-9);
        let u3 = LinearUtility::new(vec![1.0, 2.0, 3.0]).unwrap();
        let mut bids3 = [0.0; 3];
        best_response_into(
            &u3,
            9.0,
            &[1.0, 1.0, 1.0],
            &[4.0, 4.0, 4.0],
            &BiddingOptions::default(),
            &mut scratch,
            &mut bids3,
        );
        assert_eq!(scratch.lambdas().len(), 3);
        assert!((bids3.iter().sum::<f64>() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn sole_bidder_lambda_is_zero() {
        // With y_ij = 0 the player already owns the whole resource; extra
        // money there is worthless.
        let u = LinearUtility::new(vec![1.0, 1.0]).unwrap();
        let r = best_response(
            &u,
            10.0,
            &[0.0, 5.0],
            &[4.0, 4.0],
            &BiddingOptions::default(),
        );
        assert_eq!(r.lambdas[0], 0.0);
        // Money should drift toward the contested resource.
        assert!(r.bids[1] > r.bids[0]);
    }
}
