//! Parallel execution policy for the equilibrium engine and the oracle.
//!
//! Every parallel-capable loop in this workspace is written so that the
//! *values* it computes are a pure function of its inputs, independent of
//! how the loop is executed. [`ParallelPolicy`] therefore only chooses an
//! execution strategy — serial, a fixed thread count, or an automatic
//! choice based on problem size — and results are bit-identical across all
//! three (asserted by the `parallel_determinism` integration tests).
//!
//! With the `parallel` cargo feature disabled the policy type still exists
//! (so option structs keep their shape) but every policy resolves to
//! single-threaded execution and the rayon dependency disappears.

/// How a parallel-capable loop executes. Purely an execution knob: the
/// computed values are identical under every variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelPolicy {
    /// Parallelize when the fan-out is wide enough to amortize thread
    /// spawn/coordination cost (at least [`AUTO_MIN_FANOUT`] work items),
    /// using all available worker threads; stay serial below that.
    #[default]
    Auto,
    /// Always single-threaded.
    Serial,
    /// Exactly this many worker threads (clamped to the fan-out width).
    Threads(usize),
}

/// Smallest fan-out for which [`ParallelPolicy::Auto`] goes parallel.
///
/// Below this, per-item work (a hill-climbing best response over a handful
/// of resources, ~microseconds) does not amortize thread coordination;
/// small markets — the common case inside nested mechanism loops — must
/// stay serial without callers having to think about it.
pub const AUTO_MIN_FANOUT: usize = 32;

impl ParallelPolicy {
    /// Number of worker threads this policy yields for a loop of
    /// `work_items` independent items. Always at least 1; never more than
    /// `work_items`. With the `parallel` feature disabled, always 1.
    pub fn resolved_threads(self, work_items: usize) -> usize {
        #[cfg(not(feature = "parallel"))]
        {
            let _ = work_items;
            1
        }
        #[cfg(feature = "parallel")]
        match self {
            ParallelPolicy::Serial => 1,
            ParallelPolicy::Threads(n) => n.clamp(1, work_items.max(1)),
            ParallelPolicy::Auto => {
                if work_items >= AUTO_MIN_FANOUT {
                    rayon::current_num_threads().clamp(1, work_items)
                } else {
                    1
                }
            }
        }
    }

    /// `true` if this policy would actually spawn threads for a loop of
    /// `work_items` items (used by outer loops to decide whether nested
    /// inner solves should be forced serial).
    pub fn is_parallel_for(self, work_items: usize) -> bool {
        self.resolved_threads(work_items) > 1
    }

    /// Like [`ParallelPolicy::resolved_threads`], but for *coarse* work
    /// items — whole mechanism runs or equilibrium solves, milliseconds
    /// each — where even a fan-out of 2 amortizes thread cost. `Auto`
    /// parallelizes whenever there are at least 2 items.
    pub fn resolved_threads_coarse(self, work_items: usize) -> usize {
        #[cfg(not(feature = "parallel"))]
        {
            let _ = work_items;
            1
        }
        #[cfg(feature = "parallel")]
        match self {
            ParallelPolicy::Serial => 1,
            ParallelPolicy::Threads(n) => n.clamp(1, work_items.max(1)),
            ParallelPolicy::Auto => max_threads().clamp(1, work_items.max(1)),
        }
    }
}

/// The worker-thread count [`ParallelPolicy::Auto`] resolves to when it
/// parallelizes: honors an enclosing rayon pool / `RAYON_NUM_THREADS`,
/// falling back to the machine's available parallelism. Always 1 with the
/// `parallel` feature disabled.
pub fn max_threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        rayon::current_num_threads().max(1)
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Applies `f` to every `row_len`-sized chunk of `data` (in index order),
/// threading a per-worker scratch state created by `init`.
///
/// The workhorse of the equilibrium engine: `data` is the flat row-major
/// bid buffer being written, one chunk per player. Chunks are distributed
/// over `threads` workers in contiguous index bands; each worker creates
/// its scratch once and reuses it for every row it owns, so the hot loop
/// performs no per-row allocation.
pub(crate) fn for_each_row<S>(
    threads: usize,
    data: &mut [f64],
    row_len: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &mut [f64]) + Sync,
) {
    #[cfg(feature = "parallel")]
    if threads > 1 {
        use rayon::prelude::*;
        // Pool construction can fail if the OS refuses threads; degrade to
        // the serial path below rather than panic — results are identical.
        if let Ok(pool) = rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
            pool.install(|| {
                data.par_chunks_mut(row_len)
                    .enumerate()
                    .for_each_init(&init, |scratch, (i, row)| f(scratch, i, row));
            });
            return;
        }
    }
    let _ = threads;
    let mut scratch = init();
    for (i, row) in data.chunks_mut(row_len).enumerate() {
        f(&mut scratch, i, row);
    }
}

/// Applies `f` to every block of an irregularly-partitioned buffer, in
/// parallel over contiguous bands of blocks.
///
/// `block_ptr` (length `blocks + 1`, with `block_ptr[0] == 0` and
/// `block_ptr[blocks] == vals.len()`) partitions `vals` into consecutive
/// blocks; block `b` also owns the `aux_stride`-sized slice
/// `aux[b*aux_stride..(b+1)*aux_stride]`. Each invocation
/// `f(b, vals_b, aux_b)` gets exclusive mutable access to its block's two
/// slices, so the call is race-free by construction and the computed
/// values are independent of `threads`.
///
/// This is the sparse counterpart of [`for_each_row`]: the first-order
/// solvers partition players into fixed-size blocks whose CSR rows have
/// irregular byte extents, which the uniform-chunk rayon shim cannot
/// split — so the banding is done here directly with scoped threads (the
/// same scheme the shim uses internally).
pub(crate) fn for_each_block(
    threads: usize,
    vals: &mut [f64],
    block_ptr: &[usize],
    aux: &mut [f64],
    aux_stride: usize,
    f: impl Fn(usize, &mut [f64], &mut [f64]) + Sync,
) {
    let blocks = block_ptr.len().saturating_sub(1);
    debug_assert_eq!(block_ptr.first().copied().unwrap_or(0), 0);
    debug_assert_eq!(block_ptr.last().copied().unwrap_or(0), vals.len());
    debug_assert_eq!(aux.len(), blocks * aux_stride);
    #[cfg(feature = "parallel")]
    {
        let workers = threads.clamp(1, blocks.max(1));
        if workers > 1 {
            let f = &f;
            std::thread::scope(|scope| {
                let mut vals_rest = vals;
                let mut aux_rest = aux;
                let mut val_off = 0usize;
                for t in 0..workers {
                    let lo = t * blocks / workers;
                    let hi = (t + 1) * blocks / workers;
                    let (vals_band, vr) = vals_rest.split_at_mut(block_ptr[hi] - val_off);
                    vals_rest = vr;
                    let (aux_band, ar) = aux_rest.split_at_mut((hi - lo) * aux_stride);
                    aux_rest = ar;
                    let band_ptr = &block_ptr[lo..=hi];
                    scope.spawn(move || {
                        let base = band_ptr[0];
                        for (k, b) in (lo..hi).enumerate() {
                            let (vs, au) = (
                                &mut vals_band[band_ptr[k] - base..band_ptr[k + 1] - base],
                                &mut aux_band[k * aux_stride..(k + 1) * aux_stride],
                            );
                            f(b, vs, au);
                        }
                    });
                    val_off = block_ptr[hi];
                }
            });
            return;
        }
    }
    let _ = threads;
    for b in 0..blocks {
        f(
            b,
            &mut vals[block_ptr[b]..block_ptr[b + 1]],
            &mut aux[b * aux_stride..(b + 1) * aux_stride],
        );
    }
}

/// Evaluates `f(i)` for `i` in `0..len` across `threads` workers,
/// returning results in index order. Serial when `threads <= 1`.
///
/// Public so downstream crates (core's sweep, sim's market builder) can
/// fan out coarse work items under the same policy machinery.
pub fn map_indexed<R: Send>(threads: usize, len: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    #[cfg(feature = "parallel")]
    if threads > 1 {
        use rayon::prelude::*;
        // Degrade to serial on pool-construction failure (identical results).
        if let Ok(pool) = rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
            return pool.install(|| (0..len).into_par_iter().map(&f).collect());
        }
    }
    let _ = threads;
    (0..len).map(f).collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn serial_policy_is_always_one_thread() {
        assert_eq!(ParallelPolicy::Serial.resolved_threads(1000), 1);
        assert!(!ParallelPolicy::Serial.is_parallel_for(1000));
    }

    #[test]
    fn threads_policy_clamps_to_fanout() {
        assert_eq!(ParallelPolicy::Threads(0).resolved_threads(3), 1);
        #[cfg(feature = "parallel")]
        {
            assert_eq!(ParallelPolicy::Threads(8).resolved_threads(3), 3);
            assert_eq!(ParallelPolicy::Threads(4).resolved_threads(100), 4);
        }
        #[cfg(not(feature = "parallel"))]
        {
            assert_eq!(ParallelPolicy::Threads(8).resolved_threads(3), 1);
            assert_eq!(ParallelPolicy::Threads(4).resolved_threads(100), 1);
        }
    }

    #[test]
    fn auto_stays_serial_below_threshold() {
        assert_eq!(
            ParallelPolicy::Auto.resolved_threads(AUTO_MIN_FANOUT - 1),
            1
        );
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(ParallelPolicy::default(), ParallelPolicy::Auto);
    }

    #[test]
    fn for_each_row_identical_serial_and_parallel() {
        let row_len = 3;
        let rows = 64;
        let run = |threads: usize| -> Vec<f64> {
            let mut data = vec![0.0; rows * row_len];
            for_each_row(
                threads,
                &mut data,
                row_len,
                || vec![0.0; row_len],
                |scratch, i, row| {
                    for (k, slot) in row.iter_mut().enumerate() {
                        scratch[k] = (i as f64 + 1.0).sqrt() * (k as f64 + 0.5);
                        *slot = scratch[k].sin();
                    }
                },
            );
            data
        };
        let serial = run(1);
        let parallel = run(4);
        assert!(serial
            .iter()
            .zip(&parallel)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn for_each_block_identical_serial_and_parallel() {
        // Irregular blocks: sizes 1, 4, 2, 5, 0, 3.
        let block_ptr = [0usize, 1, 5, 7, 12, 12, 15];
        let stride = 2;
        let run = |threads: usize| -> (Vec<f64>, Vec<f64>) {
            let mut vals: Vec<f64> = (0..15).map(|i| i as f64).collect();
            let mut aux = vec![0.0; (block_ptr.len() - 1) * stride];
            for_each_block(
                threads,
                &mut vals,
                &block_ptr,
                &mut aux,
                stride,
                |b, vs, au| {
                    for v in vs.iter_mut() {
                        *v = (*v + b as f64).sqrt();
                        au[0] += *v;
                    }
                    au[1] = vs.len() as f64;
                },
            );
            (vals, aux)
        };
        let (sv, sa) = run(1);
        let (pv, pa) = run(4);
        assert!(sv.iter().zip(&pv).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(sa.iter().zip(&pa).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(sa[3 * stride + 1], 5.0); // block 3 has 5 items
    }

    #[test]
    fn map_indexed_preserves_order() {
        let serial = map_indexed(1, 100, |i| i * i);
        let parallel = map_indexed(4, 100, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 49);
    }
}
