//! The set of divisible resources traded in a market.

use crate::{MarketError, Result};

/// A fixed set of `M` divisible resources, each with a finite positive
/// capacity `C_j`.
///
/// In the multicore instantiation of the paper, resource 0 is discretionary
/// L2 cache capacity (in 128 kB regions) and resource 1 is the discretionary
/// chip power budget (in Watts); but the market itself is agnostic.
///
/// # Examples
///
/// ```
/// use rebudget_market::ResourceSpace;
///
/// # fn main() -> Result<(), rebudget_market::MarketError> {
/// let space = ResourceSpace::with_names(
///     vec![("cache-regions".to_string(), 24.0), ("watts".to_string(), 56.0)],
/// )?;
/// assert_eq!(space.len(), 2);
/// assert_eq!(space.capacity(1), 56.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceSpace {
    names: Vec<String>,
    capacities: Vec<f64>,
}

impl ResourceSpace {
    /// Creates a resource space from capacities, auto-naming resources
    /// `r0`, `r1`, ….
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::Empty`] if `capacities` is empty, and
    /// [`MarketError::InvalidValue`] if any capacity is non-finite or
    /// not strictly positive.
    pub fn new(capacities: Vec<f64>) -> Result<Self> {
        let names = (0..capacities.len()).map(|j| format!("r{j}")).collect();
        Self::with_capacities_and_names(names, capacities)
    }

    /// Creates a resource space from `(name, capacity)` pairs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ResourceSpace::new`].
    pub fn with_names(resources: Vec<(String, f64)>) -> Result<Self> {
        let (names, capacities) = resources.into_iter().unzip();
        Self::with_capacities_and_names(names, capacities)
    }

    fn with_capacities_and_names(names: Vec<String>, capacities: Vec<f64>) -> Result<Self> {
        if capacities.is_empty() {
            return Err(MarketError::Empty { what: "resources" });
        }
        for &c in &capacities {
            if !c.is_finite() || c <= 0.0 {
                return Err(MarketError::InvalidValue {
                    what: "capacity",
                    value: c,
                });
            }
        }
        Ok(Self { names, capacities })
    }

    /// Number of resources `M`.
    pub fn len(&self) -> usize {
        self.capacities.len()
    }

    /// Returns `true` if the space holds no resources (never constructible;
    /// provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.capacities.is_empty()
    }

    /// Capacity `C_j` of resource `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.len()`.
    pub fn capacity(&self, j: usize) -> f64 {
        self.capacities[j]
    }

    /// All capacities, indexed by resource.
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Name of resource `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.len()`.
    pub fn name(&self, j: usize) -> &str {
        &self.names[j]
    }

    /// All resource names, indexed by resource.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn new_auto_names() {
        let s = ResourceSpace::new(vec![4.0, 2.0, 9.0]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.name(0), "r0");
        assert_eq!(s.name(2), "r2");
        assert_eq!(s.capacities(), &[4.0, 2.0, 9.0]);
        assert!(!s.is_empty());
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            ResourceSpace::new(vec![]).unwrap_err(),
            MarketError::Empty { what: "resources" }
        );
    }

    #[test]
    fn rejects_zero_negative_and_nan_capacity() {
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let err = ResourceSpace::new(vec![1.0, bad]).unwrap_err();
            match err {
                MarketError::InvalidValue { what, .. } => assert_eq!(what, "capacity"),
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn with_names_preserves_order() {
        let s = ResourceSpace::with_names(vec![
            ("cache".to_string(), 24.0),
            ("power".to_string(), 56.0),
        ])
        .unwrap();
        assert_eq!(s.name(0), "cache");
        assert_eq!(s.name(1), "power");
        assert_eq!(s.capacity(0), 24.0);
    }

    #[test]
    fn debug_repr_exposes_fields() {
        let s = ResourceSpace::new(vec![4.0, 2.0]).unwrap();
        let repr = format!("{s:?}").to_lowercase();
        assert!(repr.contains("capacities"));
    }
}
