//! Utility models: concave, non-decreasing, continuous player utilities.
//!
//! The theory of the paper (§2) assumes each player's utility `U_i(r_i)` is
//! concave, non-decreasing, and continuous in the allocation vector. This
//! module provides:
//!
//! * the [`Utility`] trait, with a numeric [`Utility::marginal`] default;
//! * closed-form families: [`LinearUtility`], [`CobbDouglas`],
//!   [`SeparableUtility`] (sums of concave one-dimensional terms);
//! * [`PiecewiseLinear`] one-dimensional curves with an
//!   [upper concave hull](PiecewiseLinear::upper_concave_hull) operation —
//!   the same convexification that Talus (Beckmann & Sanchez, HPCA 2015)
//!   applies to cache miss curves, used here for utility curves (§4.1.1);
//! * [`GridUtility`], a bilinear interpolation over a tabulated
//!   `(resource 0, resource 1)` utility surface, which is how profiled
//!   multicore utilities enter the market in the paper's analytical phase
//!   (§6, "we sample 90 cache+power configuration points").

use crate::{MarketError, Result};

/// A player's utility function over an allocation vector.
///
/// Implementations must be non-decreasing and continuous; the theoretical
/// guarantees of the paper additionally require concavity (see §2). The
/// multicore utility in the paper is IPC normalized to the stand-alone IPC,
/// hence values typically fall in `[0, 1]`, but nothing in the market
/// requires that.
pub trait Utility: Send + Sync {
    /// Utility of the allocation `r` (one entry per resource).
    fn value(&self, r: &[f64]) -> f64;

    /// Marginal utility `∂U/∂r_j` at `r`.
    ///
    /// The default implementation uses a central finite difference with a
    /// step proportional to `r[j]`, clamped so the lower probe never goes
    /// negative. Override when a closed form exists.
    fn marginal(&self, r: &[f64], j: usize) -> f64 {
        let h = (r[j].abs() * 1e-4).max(1e-6);
        let mut hi = r.to_vec();
        hi[j] += h;
        let mut lo = r.to_vec();
        lo[j] = (r[j] - h).max(0.0);
        let dx = hi[j] - lo[j];
        (self.value(&hi) - self.value(&lo)) / dx
    }
}

impl<U: Utility + ?Sized> Utility for &U {
    fn value(&self, r: &[f64]) -> f64 {
        (**self).value(r)
    }
    fn marginal(&self, r: &[f64], j: usize) -> f64 {
        (**self).marginal(r, j)
    }
}

impl<U: Utility + ?Sized> Utility for std::sync::Arc<U> {
    fn value(&self, r: &[f64]) -> f64 {
        (**self).value(r)
    }
    fn marginal(&self, r: &[f64], j: usize) -> f64 {
        (**self).marginal(r, j)
    }
}

/// `U(r) = Σ_j w_j · r_j` — linear (hence concave) utility.
///
/// # Examples
///
/// ```
/// use rebudget_market::utility::{LinearUtility, Utility};
/// # fn main() -> Result<(), rebudget_market::MarketError> {
/// let u = LinearUtility::new(vec![2.0, 0.5])?;
/// assert_eq!(u.value(&[1.0, 4.0]), 4.0);
/// assert_eq!(u.marginal(&[1.0, 4.0], 0), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearUtility {
    weights: Vec<f64>,
}

impl LinearUtility {
    /// Creates a linear utility with the given non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::InvalidValue`] if any weight is negative or
    /// non-finite, and [`MarketError::Empty`] if `weights` is empty.
    pub fn new(weights: Vec<f64>) -> Result<Self> {
        if weights.is_empty() {
            return Err(MarketError::Empty { what: "resources" });
        }
        for &w in &weights {
            if !w.is_finite() || w < 0.0 {
                return Err(MarketError::InvalidValue {
                    what: "linear utility weight",
                    value: w,
                });
            }
        }
        Ok(Self { weights })
    }

    /// The per-resource weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Utility for LinearUtility {
    fn value(&self, r: &[f64]) -> f64 {
        self.weights.iter().zip(r).map(|(w, x)| w * x).sum()
    }

    fn marginal(&self, _r: &[f64], j: usize) -> f64 {
        self.weights[j]
    }
}

/// Cobb–Douglas utility `U(r) = scale · Π_j r_j^{e_j}`, the family that the
/// *elasticities proportional* mechanism of Zahedi & Lee (ASPLOS 2014)
/// curve-fits applications to. Concave whenever `Σ_j e_j ≤ 1`.
///
/// # Examples
///
/// ```
/// use rebudget_market::utility::{CobbDouglas, Utility};
/// # fn main() -> Result<(), rebudget_market::MarketError> {
/// let u = CobbDouglas::new(1.0, vec![0.5, 0.5])?;
/// assert!((u.value(&[4.0, 9.0]) - 6.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CobbDouglas {
    scale: f64,
    elasticities: Vec<f64>,
}

impl CobbDouglas {
    /// Creates a Cobb–Douglas utility.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::InvalidValue`] if `scale` is non-positive or
    /// any elasticity is negative or non-finite, and [`MarketError::Empty`]
    /// if `elasticities` is empty.
    pub fn new(scale: f64, elasticities: Vec<f64>) -> Result<Self> {
        if elasticities.is_empty() {
            return Err(MarketError::Empty { what: "resources" });
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(MarketError::InvalidValue {
                what: "Cobb-Douglas scale",
                value: scale,
            });
        }
        for &e in &elasticities {
            if !e.is_finite() || e < 0.0 {
                return Err(MarketError::InvalidValue {
                    what: "Cobb-Douglas elasticity",
                    value: e,
                });
            }
        }
        Ok(Self {
            scale,
            elasticities,
        })
    }

    /// The per-resource elasticities.
    pub fn elasticities(&self) -> &[f64] {
        &self.elasticities
    }
}

impl Utility for CobbDouglas {
    fn value(&self, r: &[f64]) -> f64 {
        self.scale
            * self
                .elasticities
                .iter()
                .zip(r)
                .map(|(&e, &x)| x.max(0.0).powf(e))
                .product::<f64>()
    }

    fn marginal(&self, r: &[f64], j: usize) -> f64 {
        let x = r[j].max(1e-12);
        self.elasticities[j] * self.value(r) / x
    }
}

/// A one-dimensional concave term usable inside [`SeparableUtility`].
#[derive(Debug, Clone, PartialEq)]
pub enum Concave1d {
    /// `w · x`.
    Linear {
        /// Slope `w ≥ 0`.
        slope: f64,
    },
    /// `scale · x^exponent`, concave for `exponent ∈ (0, 1]`.
    Power {
        /// Multiplier.
        scale: f64,
        /// Exponent in `(0, 1]`.
        exponent: f64,
    },
    /// `scale · ln(1 + x)`.
    Log {
        /// Multiplier.
        scale: f64,
    },
    /// An arbitrary non-decreasing piecewise-linear curve.
    Curve(PiecewiseLinear),
}

impl Concave1d {
    /// Value of the term at `x ≥ 0`.
    pub fn value(&self, x: f64) -> f64 {
        match self {
            Concave1d::Linear { slope } => slope * x,
            Concave1d::Power { scale, exponent } => scale * x.max(0.0).powf(*exponent),
            Concave1d::Log { scale } => scale * (1.0 + x.max(0.0)).ln(),
            Concave1d::Curve(c) => c.value(x),
        }
    }

    /// Derivative of the term at `x`.
    pub fn slope(&self, x: f64) -> f64 {
        match self {
            Concave1d::Linear { slope } => *slope,
            Concave1d::Power { scale, exponent } => {
                scale * exponent * x.max(1e-12).powf(exponent - 1.0)
            }
            Concave1d::Log { scale } => scale / (1.0 + x.max(0.0)),
            Concave1d::Curve(c) => c.slope_at(x),
        }
    }
}

/// `U(r) = Σ_j term_j(r_j)` — a separable sum of concave one-dimensional
/// terms. Convenient for synthetic markets and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct SeparableUtility {
    terms: Vec<Concave1d>,
}

impl SeparableUtility {
    /// Creates a separable utility from per-resource terms.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::Empty`] if `terms` is empty, or
    /// [`MarketError::InvalidValue`] if any parameter is out of range
    /// (negative slope/scale, exponent outside `(0, 1]`).
    pub fn new(terms: Vec<Concave1d>) -> Result<Self> {
        if terms.is_empty() {
            return Err(MarketError::Empty { what: "resources" });
        }
        for t in &terms {
            match t {
                Concave1d::Linear { slope } if !slope.is_finite() || *slope < 0.0 => {
                    return Err(MarketError::InvalidValue {
                        what: "separable term slope",
                        value: *slope,
                    });
                }
                Concave1d::Power { scale, exponent } => {
                    if !scale.is_finite() || *scale < 0.0 {
                        return Err(MarketError::InvalidValue {
                            what: "separable term scale",
                            value: *scale,
                        });
                    }
                    if !exponent.is_finite() || *exponent <= 0.0 || *exponent > 1.0 {
                        return Err(MarketError::InvalidValue {
                            what: "separable term exponent",
                            value: *exponent,
                        });
                    }
                }
                Concave1d::Log { scale } if !scale.is_finite() || *scale < 0.0 => {
                    return Err(MarketError::InvalidValue {
                        what: "separable term scale",
                        value: *scale,
                    });
                }
                _ => {}
            }
        }
        Ok(Self { terms })
    }

    /// Builds `U(r) = Σ_j w_j · sqrt(r_j / C_j)`: a concave utility whose
    /// maximum over the capacities `C` equals `Σ_j w_j`. With weights summing
    /// to 1 this matches the paper's normalized-IPC convention (`U ∈ [0,1]`,
    /// maximum utility 1 when owning everything; §2.3).
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::DimensionMismatch`] if `weights` and
    /// `capacities` differ in length, or [`MarketError::InvalidValue`] for
    /// negative weights or non-positive capacities.
    pub fn proportional(weights: &[f64], capacities: &[f64]) -> Result<Self> {
        if weights.len() != capacities.len() {
            return Err(MarketError::DimensionMismatch {
                what: "proportional utility weights",
                expected: capacities.len(),
                actual: weights.len(),
            });
        }
        let mut terms = Vec::with_capacity(weights.len());
        for (&w, &c) in weights.iter().zip(capacities) {
            if !c.is_finite() || c <= 0.0 {
                return Err(MarketError::InvalidValue {
                    what: "capacity",
                    value: c,
                });
            }
            terms.push(Concave1d::Power {
                scale: w / c.sqrt(),
                exponent: 0.5,
            });
        }
        Self::new(terms)
    }

    /// The per-resource terms.
    pub fn terms(&self) -> &[Concave1d] {
        &self.terms
    }
}

impl Utility for SeparableUtility {
    fn value(&self, r: &[f64]) -> f64 {
        self.terms.iter().zip(r).map(|(t, &x)| t.value(x)).sum()
    }

    fn marginal(&self, r: &[f64], j: usize) -> f64 {
        self.terms[j].slope(r[j])
    }
}

/// A non-decreasing piecewise-linear curve `y(x)` over `[x_0, x_last]`,
/// extended flat beyond both ends.
///
/// Used both as a one-dimensional utility term and as the representation of
/// profiled utility/miss curves. The
/// [`upper_concave_hull`](PiecewiseLinear::upper_concave_hull) operation
/// convexifies a curve the way Talus does for cache utilities (§4.1.1,
/// Figure 2 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl PiecewiseLinear {
    /// Creates a curve from `(x, y)` points.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::InvalidUtility`] unless there are at least two
    /// points, the `x` values are strictly increasing, all values are finite,
    /// and the `y` values are non-decreasing.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self> {
        if points.len() < 2 {
            return Err(MarketError::InvalidUtility {
                reason: "piecewise-linear curve needs at least two points".into(),
            });
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(MarketError::InvalidUtility {
                    reason: format!(
                        "x values must be strictly increasing ({} then {})",
                        w[0].0, w[1].0
                    ),
                });
            }
            if w[1].1 < w[0].1 - 1e-12 {
                return Err(MarketError::InvalidUtility {
                    reason: format!(
                        "y values must be non-decreasing ({} then {})",
                        w[0].1, w[1].1
                    ),
                });
            }
        }
        for &(x, y) in &points {
            if !x.is_finite() || !y.is_finite() {
                return Err(MarketError::InvalidUtility {
                    reason: "curve contains non-finite values".into(),
                });
            }
        }
        let (xs, ys) = points.into_iter().unzip();
        Ok(Self { xs, ys })
    }

    /// The breakpoint `x` coordinates.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The breakpoint `y` coordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Interpolated value at `x`; clamped flat outside the breakpoint range.
    /// A NaN probe clamps to the low end rather than panicking (bidders can
    /// transiently produce NaN allocations from degenerate 0/0 shares).
    pub fn value(&self, x: f64) -> f64 {
        if x.is_nan() || x <= self.xs[0] {
            return self.ys[0];
        }
        let last = self.xs.len() - 1;
        if x >= self.xs[last] {
            return self.ys[last];
        }
        // Total-order search for the segment containing x: k is the first
        // breakpoint strictly above x, so xs[k-1] <= x < xs[k]. (An exact
        // breakpoint hit interpolates to exactly ys[k-1].)
        let k = self
            .xs
            .partition_point(|p| p.total_cmp(&x).is_le())
            .clamp(1, last);
        let (x0, x1) = (self.xs[k - 1], self.xs[k]);
        let (y0, y1) = (self.ys[k - 1], self.ys[k]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Slope of the segment containing `x` (zero outside the range; at a
    /// breakpoint, the slope of the segment to its right).
    pub fn slope_at(&self, x: f64) -> f64 {
        let last = self.xs.len() - 1;
        if x < self.xs[0] || x >= self.xs[last] {
            return 0.0;
        }
        let k = self.xs.partition_point(|&p| p <= x).clamp(1, last);
        (self.ys[k] - self.ys[k - 1]) / (self.xs[k] - self.xs[k - 1])
    }

    /// Returns `true` if segment slopes are non-increasing within `tol`.
    pub fn is_concave(&self, tol: f64) -> bool {
        let mut prev = f64::INFINITY;
        for w in self.xs.windows(2).zip(self.ys.windows(2)) {
            let slope = (w.1[1] - w.1[0]) / (w.0[1] - w.0[0]);
            if slope > prev + tol {
                return false;
            }
            prev = slope;
        }
        true
    }

    /// The upper concave hull of the curve: the least concave curve lying on
    /// or above the original through a subset of its points.
    ///
    /// This is the convexification step of Talus (§4.1.1 of the paper); the
    /// retained breakpoints are the "points of interest" between which the
    /// cache controller interpolates with shadow partitions.
    pub fn upper_concave_hull(&self) -> PiecewiseLinear {
        let n = self.xs.len();
        let mut hull: Vec<usize> = Vec::with_capacity(n);
        for i in 0..n {
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                // Keep b only if it lies strictly above chord a->i.
                let cross = (self.xs[b] - self.xs[a]) * (self.ys[i] - self.ys[a])
                    - (self.ys[b] - self.ys[a]) * (self.xs[i] - self.xs[a]);
                if cross >= -1e-12 {
                    hull.pop();
                } else {
                    break;
                }
            }
            hull.push(i);
        }
        let points = hull.into_iter().map(|i| (self.xs[i], self.ys[i])).collect();
        // The hull keeps a strictly-increasing subset of a valid curve's
        // points, so reconstruction cannot fail; degrade to the original
        // curve rather than panic if that invariant ever breaks.
        PiecewiseLinear::new(points).unwrap_or_else(|_| self.clone())
    }
}

/// Bilinear interpolation over a tabulated two-resource utility surface.
///
/// Axes must be strictly increasing; evaluation clamps (saturates) outside
/// the tabulated range, matching the paper's assumption that allocations
/// beyond the profiled range yield no additional utility (§5, footnote 3).
///
/// # Examples
///
/// ```
/// use rebudget_market::utility::{GridUtility, Utility};
/// # fn main() -> Result<(), rebudget_market::MarketError> {
/// let u = GridUtility::new(
///     vec![0.0, 1.0],
///     vec![0.0, 2.0],
///     vec![0.0, 0.5, 0.5, 1.0], // row-major: [x0y0, x0y1, x1y0, x1y1]
/// )?;
/// assert!((u.value(&[0.5, 1.0]) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GridUtility {
    axis0: Vec<f64>,
    axis1: Vec<f64>,
    /// Row-major: `values[i0 * axis1.len() + i1]`.
    values: Vec<f64>,
}

impl GridUtility {
    /// Creates a grid utility.
    ///
    /// `values` is row-major over `(axis0, axis1)`.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::InvalidUtility`] if either axis has fewer than
    /// two points or is not strictly increasing, or
    /// [`MarketError::DimensionMismatch`] if `values.len() != axis0.len() *
    /// axis1.len()`.
    pub fn new(axis0: Vec<f64>, axis1: Vec<f64>, values: Vec<f64>) -> Result<Self> {
        for axis in [&axis0, &axis1] {
            if axis.len() < 2 {
                return Err(MarketError::InvalidUtility {
                    reason: "grid axes need at least two points".into(),
                });
            }
            if axis.windows(2).any(|w| w[1] <= w[0]) {
                return Err(MarketError::InvalidUtility {
                    reason: "grid axes must be strictly increasing".into(),
                });
            }
        }
        if values.len() != axis0.len() * axis1.len() {
            return Err(MarketError::DimensionMismatch {
                what: "grid values",
                expected: axis0.len() * axis1.len(),
                actual: values.len(),
            });
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(MarketError::InvalidUtility {
                reason: "grid contains non-finite values".into(),
            });
        }
        Ok(Self {
            axis0,
            axis1,
            values,
        })
    }

    fn locate(axis: &[f64], x: f64) -> (usize, f64) {
        // Returns (lower index k, fraction t) with x ≈ axis[k]*(1-t)+axis[k+1]*t,
        // clamped to the axis range. NaN clamps to the low end instead of
        // poisoning the interpolation (or panicking in an ordered search).
        let last = axis.len() - 1;
        if x.is_nan() || x <= axis[0] {
            return (0, 0.0);
        }
        if x >= axis[last] {
            return (last - 1, 1.0);
        }
        let k = axis
            .partition_point(|p| p.total_cmp(&x).is_le())
            .clamp(1, last)
            - 1;
        let t = (x - axis[k]) / (axis[k + 1] - axis[k]);
        (k, t)
    }

    fn at(&self, i0: usize, i1: usize) -> f64 {
        self.values[i0 * self.axis1.len() + i1]
    }

    /// The first axis (resource 0 sample points).
    pub fn axis0(&self) -> &[f64] {
        &self.axis0
    }

    /// The second axis (resource 1 sample points).
    pub fn axis1(&self) -> &[f64] {
        &self.axis1
    }
}

impl Utility for GridUtility {
    fn value(&self, r: &[f64]) -> f64 {
        let (i, t) = Self::locate(&self.axis0, r[0]);
        let (j, s) = Self::locate(&self.axis1, r[1]);
        let v00 = self.at(i, j);
        let v01 = self.at(i, j + 1);
        let v10 = self.at(i + 1, j);
        let v11 = self.at(i + 1, j + 1);
        v00 * (1.0 - t) * (1.0 - s) + v10 * t * (1.0 - s) + v01 * (1.0 - t) * s + v11 * t * s
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn linear_value_and_marginal() {
        let u = LinearUtility::new(vec![2.0, 0.5]).unwrap();
        assert_eq!(u.value(&[3.0, 4.0]), 8.0);
        assert_eq!(u.marginal(&[3.0, 4.0], 1), 0.5);
        assert_eq!(u.weights(), &[2.0, 0.5]);
    }

    #[test]
    fn linear_rejects_negative_weight() {
        assert!(LinearUtility::new(vec![1.0, -0.1]).is_err());
        assert!(LinearUtility::new(vec![]).is_err());
    }

    #[test]
    fn cobb_douglas_value_and_analytic_marginal() {
        let u = CobbDouglas::new(2.0, vec![0.25, 0.75]).unwrap();
        let r = [16.0, 81.0];
        let v = u.value(&r);
        assert!((v - 2.0 * 2.0 * 27.0).abs() < 1e-9);
        // Analytic marginal must agree with the default numeric one.
        let numeric = {
            struct Wrap<'a>(&'a CobbDouglas);
            impl Utility for Wrap<'_> {
                fn value(&self, r: &[f64]) -> f64 {
                    self.0.value(r)
                }
            }
            Wrap(&u).marginal(&r, 0)
        };
        assert!((u.marginal(&r, 0) - numeric).abs() / numeric < 1e-3);
    }

    #[test]
    fn cobb_douglas_rejects_bad_params() {
        assert!(CobbDouglas::new(0.0, vec![0.5]).is_err());
        assert!(CobbDouglas::new(1.0, vec![-0.5]).is_err());
        assert!(CobbDouglas::new(1.0, vec![]).is_err());
    }

    #[test]
    fn separable_proportional_maxes_at_weight_sum() {
        let caps = [16.0, 80.0];
        let u = SeparableUtility::proportional(&[0.6, 0.4], &caps).unwrap();
        assert!((u.value(&caps) - 1.0).abs() < 1e-9);
        assert!(u.value(&[0.0, 0.0]).abs() < 1e-9);
        // Marginal decreasing in allocation (concavity).
        assert!(u.marginal(&[1.0, 1.0], 0) > u.marginal(&[10.0, 1.0], 0));
    }

    #[test]
    fn separable_rejects_bad_terms() {
        assert!(SeparableUtility::new(vec![]).is_err());
        assert!(SeparableUtility::new(vec![Concave1d::Power {
            scale: 1.0,
            exponent: 1.5,
        }])
        .is_err());
        assert!(SeparableUtility::new(vec![Concave1d::Linear { slope: -1.0 }]).is_err());
        assert!(SeparableUtility::proportional(&[0.5], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn piecewise_interpolates_and_clamps() {
        let c = PiecewiseLinear::new(vec![(1.0, 0.2), (3.0, 0.6), (5.0, 1.0)]).unwrap();
        assert_eq!(c.value(0.0), 0.2);
        assert_eq!(c.value(1.0), 0.2);
        assert!((c.value(2.0) - 0.4).abs() < 1e-12);
        assert!((c.value(4.0) - 0.8).abs() < 1e-12);
        assert_eq!(c.value(9.0), 1.0);
        assert!((c.slope_at(2.0) - 0.2).abs() < 1e-12);
        assert_eq!(c.slope_at(6.0), 0.0);
    }

    #[test]
    fn piecewise_nan_probe_clamps_instead_of_panicking() {
        let c = PiecewiseLinear::new(vec![(1.0, 0.2), (3.0, 0.6), (5.0, 1.0)]).unwrap();
        assert_eq!(c.value(f64::NAN), 0.2);
        // Exact breakpoint hits still return the breakpoint value.
        assert_eq!(c.value(3.0), 0.6);
    }

    #[test]
    fn grid_nan_probe_clamps_instead_of_poisoning() {
        let u = GridUtility::new(
            vec![0.0, 1.0, 2.0],
            vec![0.0, 10.0],
            vec![0.0, 1.0, 0.5, 1.5, 1.0, 2.0],
        )
        .unwrap();
        assert_eq!(u.value(&[f64::NAN, 0.0]), 0.0);
        assert_eq!(u.value(&[f64::NAN, f64::NAN]), 0.0);
        assert!(u.value(&[1.0, f64::NAN]).is_finite());
    }

    #[test]
    fn piecewise_rejects_invalid() {
        assert!(PiecewiseLinear::new(vec![(0.0, 0.0)]).is_err());
        assert!(PiecewiseLinear::new(vec![(0.0, 0.0), (0.0, 1.0)]).is_err());
        assert!(PiecewiseLinear::new(vec![(0.0, 1.0), (1.0, 0.5)]).is_err());
        assert!(PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, f64::NAN)]).is_err());
    }

    #[test]
    fn hull_convexifies_mcf_like_cliff() {
        // mcf-like: flat at 0.2 until a cliff at 12 ways, then 1.0 (Figure 2).
        let points: Vec<(f64, f64)> = (1..=16)
            .map(|w| {
                let y = if w < 12 { 0.2 } else { 1.0 };
                (w as f64, y)
            })
            .collect();
        let c = PiecewiseLinear::new(points).unwrap();
        assert!(!c.is_concave(1e-9));
        let hull = c.upper_concave_hull();
        assert!(hull.is_concave(1e-9));
        // Hull dominates the original curve.
        for w in 1..=16 {
            let x = w as f64;
            assert!(hull.value(x) >= c.value(x) - 1e-12, "at x={x}");
        }
        // End points preserved.
        assert_eq!(hull.value(1.0), 0.2);
        assert_eq!(hull.value(16.0), 1.0);
        // Interior now linear between (1, 0.2) and (12, 1.0).
        let expect = 0.2 + 0.8 * (6.0 - 1.0) / (11.0);
        assert!((hull.value(6.0) - expect).abs() < 1e-9);
    }

    #[test]
    fn hull_of_concave_curve_is_identity() {
        let c = PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 0.5), (2.0, 0.8), (3.0, 0.9)]).unwrap();
        let hull = c.upper_concave_hull();
        assert_eq!(hull, c);
    }

    #[test]
    fn grid_exact_at_nodes_and_clamped() {
        let u = GridUtility::new(
            vec![0.0, 1.0, 2.0],
            vec![0.0, 10.0],
            vec![0.0, 1.0, 0.5, 1.5, 1.0, 2.0],
        )
        .unwrap();
        assert_eq!(u.value(&[0.0, 0.0]), 0.0);
        assert_eq!(u.value(&[2.0, 10.0]), 2.0);
        assert_eq!(u.value(&[1.0, 10.0]), 1.5);
        // Saturates beyond range.
        assert_eq!(u.value(&[5.0, 20.0]), 2.0);
        assert_eq!(u.value(&[-1.0, -1.0]), 0.0);
        // Bilinear midpoint.
        assert!((u.value(&[0.5, 5.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn grid_rejects_invalid() {
        assert!(GridUtility::new(vec![0.0], vec![0.0, 1.0], vec![0.0, 1.0]).is_err());
        assert!(GridUtility::new(vec![0.0, 0.0], vec![0.0, 1.0], vec![0.0; 4]).is_err());
        assert!(GridUtility::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0; 3]).is_err());
        assert!(GridUtility::new(
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![0.0, 0.0, 0.0, f64::NAN]
        )
        .is_err());
    }

    #[test]
    fn trait_objects_and_arcs_work() {
        use std::sync::Arc;
        let u: Arc<dyn Utility> = Arc::new(LinearUtility::new(vec![1.0]).unwrap());
        assert_eq!(u.value(&[2.0]), 2.0);
        assert_eq!(u.marginal(&[2.0], 0), 1.0);
    }
}
