use std::fmt;

/// Errors returned by market construction and equilibrium search.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MarketError {
    /// The market has no players or no resources.
    Empty {
        /// What was empty: `"players"` or `"resources"`.
        what: &'static str,
    },
    /// Two collections that must agree in length did not.
    DimensionMismatch {
        /// Description of the mismatching quantity.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A capacity, budget, weight, or bid was non-finite or out of range.
    InvalidValue {
        /// Description of the offending quantity.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A utility model's construction data violated its invariants
    /// (e.g. a non-monotone piecewise-linear curve).
    InvalidUtility {
        /// Human-readable reason.
        reason: String,
    },
    /// The equilibrium search exhausted its iteration budget without the
    /// price fluctuation dropping below the tolerance. Callers that treat
    /// the best-effort iterate as unacceptable can surface this error;
    /// the solver itself returns the iterate plus a
    /// [`crate::equilibrium::SolveReport`] describing it.
    NonConvergence {
        /// Iterations executed before giving up.
        iterations: u64,
        /// Final relative price fluctuation (the convergence residual).
        residual: f64,
    },
    /// A numerical quantity that must stay finite (a price, bid, utility,
    /// or marginal) became NaN or infinite and could not be repaired.
    NumericalInstability {
        /// Description of the quantity that went non-finite.
        what: &'static str,
    },
    /// A solve stopped because its [`crate::DeadlineBudget`] (wall-clock
    /// or iteration budget) ran out. The solver itself returns a
    /// best-effort iterate with [`crate::SolveReport::timed_out`] set;
    /// this error exists for callers that treat an over-deadline solve as
    /// unacceptable (see `SolveReport::ensure_within_deadline`).
    DeadlineExceeded {
        /// Iterations executed before the budget ran out.
        iterations: u64,
        /// Residual of the best-effort iterate that was returned.
        residual: f64,
    },
    /// A solver was asked to run in a setting it does not support — e.g.
    /// the dense Jacobi engine on a [`crate::SparseMarket`], or
    /// densification of a utility family the dense zoo lacks.
    UnsupportedSolver {
        /// The solver (or utility family) that cannot run here.
        solver: &'static str,
        /// The setting it was asked to run in.
        context: &'static str,
    },
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::Empty { what } => write!(f, "market has no {what}"),
            MarketError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what}: expected length {expected}, got {actual}"),
            MarketError::InvalidValue { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            MarketError::InvalidUtility { reason } => {
                write!(f, "invalid utility model: {reason}")
            }
            MarketError::NonConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "equilibrium search did not converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            MarketError::NumericalInstability { what } => {
                write!(f, "numerical instability: {what} became non-finite")
            }
            MarketError::DeadlineExceeded {
                iterations,
                residual,
            } => write!(
                f,
                "solve deadline exceeded after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            MarketError::UnsupportedSolver { solver, context } => {
                write!(f, "solver {solver} is not supported for {context}")
            }
        }
    }
}

impl std::error::Error for MarketError {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            MarketError::Empty { what: "players" },
            MarketError::DimensionMismatch {
                what: "budgets",
                expected: 4,
                actual: 2,
            },
            MarketError::InvalidValue {
                what: "capacity",
                value: -1.0,
            },
            MarketError::InvalidUtility {
                reason: "utility must be non-decreasing".into(),
            },
            MarketError::NonConvergence {
                iterations: 30,
                residual: 0.2,
            },
            MarketError::NumericalInstability { what: "prices" },
            MarketError::DeadlineExceeded {
                iterations: 12,
                residual: 0.1,
            },
            MarketError::UnsupportedSolver {
                solver: "jacobi",
                context: "sparse markets",
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MarketError>();
    }
}
