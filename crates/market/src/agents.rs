//! The distributed agent view of the market (§1–§2 of the paper).
//!
//! The paper stresses that the market is "largely distributed: … each core
//! in the CMP is actively optimizing its resource assignment largely
//! independently of each other, and participants' demands are reconciled
//! through a relatively simple pricing strategy". This module makes that
//! architecture explicit:
//!
//! * a [`BiddingAgent`] lives on one core, owns its utility and budget,
//!   *keeps its bid state across rounds and quanta*, and best-responds to
//!   broadcast prices using only local information;
//! * an [`Auctioneer`] owns the resources, aggregates bids into prices
//!   (Eq. 1), and broadcasts them.
//!
//! Persistent agents enable **warm-started bidding**: instead of
//! re-splitting the budget equally at every allocation quantum (as the
//! §4.1.2 restart does), an agent resumes from its previous bids. Since
//! consecutive quanta see similar markets, this typically converges in
//! fewer iterations — quantified in the tests and the convergence study.

use std::sync::Arc;

use crate::bidding::{best_response, BiddingOptions};
use crate::pricing;
use crate::{AllocationMatrix, BidMatrix, Market, ResourceSpace, Result, Utility};

/// A persistent, core-local bidding agent.
#[derive(Clone)]
pub struct BiddingAgent {
    utility: Arc<dyn Utility>,
    budget: f64,
    bids: Vec<f64>,
    options: BiddingOptions,
}

impl BiddingAgent {
    /// Creates an agent with an equal-split initial bid vector.
    pub fn new(utility: Arc<dyn Utility>, budget: f64, resources: usize) -> Self {
        let bids = if resources > 0 {
            vec![budget / resources as f64; resources]
        } else {
            Vec::new()
        };
        Self {
            utility,
            budget,
            bids,
            options: BiddingOptions::default(),
        }
    }

    /// The agent's current bids.
    pub fn bids(&self) -> &[f64] {
        &self.bids
    }

    /// The agent's budget.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// Re-assigns the agent's budget (e.g. a ReBudget cut), rescaling its
    /// current bids so their sum matches the new budget.
    pub fn set_budget(&mut self, budget: f64) {
        let total: f64 = self.bids.iter().sum();
        if total > 0.0 && budget > 0.0 {
            let scale = budget / total;
            self.bids.iter_mut().for_each(|b| *b *= scale);
        } else {
            let m = self.bids.len().max(1);
            self.bids = vec![budget / m as f64; self.bids.len()];
        }
        self.budget = budget;
    }

    /// One local best response: given the other agents' per-resource bid
    /// totals, adjust own bids (§4.1.2, warm-started from current bids by
    /// re-splitting only when empty).
    pub fn respond(&mut self, others: &[f64], capacities: &[f64]) {
        let response = best_response(
            self.utility.as_ref(),
            self.budget,
            others,
            capacities,
            &self.options,
        );
        self.bids = response.bids;
    }
}

impl std::fmt::Debug for BiddingAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BiddingAgent")
            .field("budget", &self.budget)
            .field("bids", &self.bids)
            .finish_non_exhaustive()
    }
}

/// The price-setting side of the market.
#[derive(Debug, Clone)]
pub struct Auctioneer {
    resources: ResourceSpace,
}

impl Auctioneer {
    /// Creates an auctioneer over the given resources.
    pub fn new(resources: ResourceSpace) -> Self {
        Self { resources }
    }

    /// The traded resources.
    pub fn resources(&self) -> &ResourceSpace {
        &self.resources
    }

    /// Aggregates the agents' bids into a [`BidMatrix`].
    ///
    /// # Errors
    ///
    /// Returns an error only for degenerate dimensions.
    pub fn collect(&self, agents: &[BiddingAgent]) -> Result<BidMatrix> {
        let m = self.resources.len();
        let mut bids = BidMatrix::zeros(agents.len(), m)?;
        for (i, a) in agents.iter().enumerate() {
            bids.set_row(i, a.bids());
        }
        Ok(bids)
    }

    /// Eq. 1 prices for the current bids.
    pub fn prices(&self, bids: &BidMatrix) -> Vec<f64> {
        pricing::prices(bids, &self.resources)
    }

    /// Proportional allocation for the current bids.
    pub fn allocate(&self, bids: &BidMatrix) -> AllocationMatrix {
        pricing::allocate(bids, &self.resources)
    }
}

/// Outcome of a distributed equilibrium round-trip.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// Final allocation.
    pub allocation: AllocationMatrix,
    /// Final prices.
    pub prices: Vec<f64>,
    /// Iterations until the 1% price-fluctuation test passed.
    pub iterations: usize,
    /// Whether convergence beat the fail-safe.
    pub converged: bool,
}

/// Runs the distributed bidding–pricing loop over persistent agents.
/// Agents keep their final bids, so a subsequent call warm-starts.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use rebudget_market::agents::{agents_from_market, distributed_equilibrium, Auctioneer};
/// use rebudget_market::utility::SeparableUtility;
/// use rebudget_market::{Market, Player, ResourceSpace};
///
/// # fn main() -> Result<(), rebudget_market::MarketError> {
/// let caps = [16.0, 80.0];
/// let market = Market::new(
///     ResourceSpace::new(caps.to_vec())?,
///     vec![
///         Player::new("a", 100.0, Arc::new(SeparableUtility::proportional(&[0.8, 0.2], &caps)?)),
///         Player::new("b", 100.0, Arc::new(SeparableUtility::proportional(&[0.2, 0.8], &caps)?)),
///     ],
/// )?;
/// let auctioneer = Auctioneer::new(market.resources().clone());
/// let mut agents = agents_from_market(&market);
/// let cold = distributed_equilibrium(&auctioneer, &mut agents, 30, 0.01)?;
/// assert!(cold.converged);
/// // Next quantum: the persistent agents warm-start.
/// let warm = distributed_equilibrium(&auctioneer, &mut agents, 30, 0.01)?;
/// assert!(warm.iterations <= cold.iterations);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns an error only for degenerate dimensions.
pub fn distributed_equilibrium(
    auctioneer: &Auctioneer,
    agents: &mut [BiddingAgent],
    max_iterations: usize,
    price_tolerance: f64,
) -> Result<DistributedOutcome> {
    let m = auctioneer.resources().len();
    let capacities: Vec<f64> = auctioneer.resources().capacities().to_vec();
    let mut bids = auctioneer.collect(agents)?;
    let mut prices = auctioneer.prices(&bids);
    let mut iterations = 0;
    let mut converged = false;
    while iterations < max_iterations {
        iterations += 1;
        for (i, agent) in agents.iter_mut().enumerate() {
            let others: Vec<f64> = (0..m).map(|j| bids.others_sum(i, j)).collect();
            agent.respond(&others, &capacities);
            bids.set_row(i, agent.bids());
        }
        let new_prices = auctioneer.prices(&bids);
        let fluctuation = prices
            .iter()
            .zip(&new_prices)
            .map(|(&old, &new)| (new - old).abs() / old.abs().max(new.abs()).max(1e-12))
            .fold(0.0_f64, f64::max);
        prices = new_prices;
        if fluctuation <= price_tolerance {
            converged = true;
            break;
        }
    }
    let allocation = auctioneer.allocate(&bids);
    Ok(DistributedOutcome {
        allocation,
        prices,
        iterations,
        converged,
    })
}

/// Builds persistent agents from a [`Market`] (one per player).
pub fn agents_from_market(market: &Market) -> Vec<BiddingAgent> {
    let m = market.resources().len();
    market
        .players()
        .iter()
        .map(|p| BiddingAgent::new(p.utility().clone(), p.budget(), m))
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::equilibrium::EquilibriumOptions;
    use crate::utility::SeparableUtility;
    use crate::{Market, Player};

    fn market() -> Market {
        let caps = [16.0, 80.0];
        let players = [[0.8, 0.2], [0.5, 0.5], [0.2, 0.8], [0.05, 0.95]]
            .iter()
            .enumerate()
            .map(|(i, w)| {
                Player::new(
                    format!("p{i}"),
                    100.0,
                    Arc::new(SeparableUtility::proportional(w, &caps).unwrap()) as Arc<dyn Utility>,
                )
            })
            .collect();
        Market::new(ResourceSpace::new(caps.to_vec()).unwrap(), players).unwrap()
    }

    #[test]
    fn distributed_matches_centralized_equilibrium() {
        let market = market();
        let central = market.equilibrium(&EquilibriumOptions::default()).unwrap();
        let auctioneer = Auctioneer::new(market.resources().clone());
        let mut agents = agents_from_market(&market);
        let dist = distributed_equilibrium(&auctioneer, &mut agents, 30, 0.01).unwrap();
        assert!(dist.converged);
        // Same fixed point: allocations agree closely.
        for i in 0..market.len() {
            for j in 0..2 {
                let a = central.allocation.get(i, j);
                let b = dist.allocation.get(i, j);
                assert!(
                    (a - b).abs() <= 0.05 * (a + b).max(1.0),
                    "player {i} resource {j}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn warm_start_converges_faster_on_similar_market() {
        let market = market();
        let auctioneer = Auctioneer::new(market.resources().clone());
        let mut agents = agents_from_market(&market);
        let cold = distributed_equilibrium(&auctioneer, &mut agents, 30, 0.01).unwrap();
        // Second quantum, same demands: agents resume from converged bids.
        let warm = distributed_equilibrium(&auctioneer, &mut agents, 30, 0.01).unwrap();
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} should not exceed cold {}",
            warm.iterations,
            cold.iterations
        );
        assert!(
            warm.iterations <= 2,
            "warm restart should be nearly instant"
        );
    }

    #[test]
    fn budget_reassignment_rescales_bids() {
        let market = market();
        let mut agents = agents_from_market(&market);
        let auctioneer = Auctioneer::new(market.resources().clone());
        distributed_equilibrium(&auctioneer, &mut agents, 30, 0.01).unwrap();
        let before: f64 = agents[0].bids().iter().sum();
        assert!((before - 100.0).abs() < 1e-6);
        agents[0].set_budget(60.0);
        let after: f64 = agents[0].bids().iter().sum();
        assert!((after - 60.0).abs() < 1e-6);
        assert_eq!(agents[0].budget(), 60.0);
        // Zero budget collapses bids.
        agents[0].set_budget(0.0);
        assert!(agents[0].bids().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn allocation_stays_exhaustive() {
        let market = market();
        let auctioneer = Auctioneer::new(market.resources().clone());
        let mut agents = agents_from_market(&market);
        let out = distributed_equilibrium(&auctioneer, &mut agents, 30, 0.01).unwrap();
        assert!(out
            .allocation
            .is_exhaustive(market.resources().capacities(), 1e-6));
    }
}
