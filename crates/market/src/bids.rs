//! Dense `N × M` bid matrices.

use crate::{MarketError, Result};

/// Bids of `N` players over `M` resources, stored row-major
/// (`bids[i * m + j]` is player `i`'s bid on resource `j`).
#[derive(Debug, Clone, PartialEq)]
pub struct BidMatrix {
    n: usize,
    m: usize,
    bids: Vec<f64>,
}

impl BidMatrix {
    /// Creates an all-zero bid matrix for `n` players and `m` resources.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::Empty`] if `n` or `m` is zero.
    pub fn zeros(n: usize, m: usize) -> Result<Self> {
        if n == 0 {
            return Err(MarketError::Empty { what: "players" });
        }
        if m == 0 {
            return Err(MarketError::Empty { what: "resources" });
        }
        Ok(Self {
            n,
            m,
            bids: vec![0.0; n * m],
        })
    }

    /// Creates a matrix where each player `i` splits `budgets[i]` equally
    /// across all resources — the initial bids of the hill-climbing bidder
    /// (§4.1.2 step 1 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::Empty`] on zero dimensions, or
    /// [`MarketError::InvalidValue`] for a negative or non-finite budget.
    pub fn equal_split(budgets: &[f64], m: usize) -> Result<Self> {
        let mut mat = Self::zeros(budgets.len(), m)?;
        for (i, &b) in budgets.iter().enumerate() {
            if !b.is_finite() || b < 0.0 {
                return Err(MarketError::InvalidValue {
                    what: "budget",
                    value: b,
                });
            }
            for j in 0..m {
                mat.set(i, j, b / m as f64);
            }
        }
        Ok(mat)
    }

    /// Number of players `N`.
    pub fn players(&self) -> usize {
        self.n
    }

    /// Number of resources `M`.
    pub fn resources(&self) -> usize {
        self.m
    }

    /// Bid of player `i` on resource `j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.m, "bid index out of range");
        self.bids[i * self.m + j]
    }

    /// Sets the bid of player `i` on resource `j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn set(&mut self, i: usize, j: usize, bid: f64) {
        assert!(i < self.n && j < self.m, "bid index out of range");
        self.bids[i * self.m + j] = bid;
    }

    /// The bid row of player `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n, "player index out of range");
        &self.bids[i * self.m..(i + 1) * self.m]
    }

    /// Overwrites the bid row of player `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `row.len() != self.resources()`.
    pub fn set_row(&mut self, i: usize, row: &[f64]) {
        assert!(i < self.n, "player index out of range");
        assert_eq!(row.len(), self.m, "row length mismatch");
        self.bids[i * self.m..(i + 1) * self.m].copy_from_slice(row);
    }

    /// Total money player `i` has committed across all resources.
    pub fn total_for_player(&self, i: usize) -> f64 {
        self.row(i).iter().sum()
    }

    /// Sum of all bids on resource `j` (`Σ_i b_ij`).
    pub fn column_sum(&self, j: usize) -> f64 {
        (0..self.n).map(|i| self.get(i, j)).sum()
    }

    /// Sum of bids on resource `j` excluding player `i` — the `y_ij` of
    /// Eq. 2 in the paper.
    pub fn others_sum(&self, i: usize, j: usize) -> f64 {
        self.column_sum(j) - self.get(i, j)
    }

    /// The flat row-major bid buffer (`n * m` entries, player-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.bids
    }

    /// Mutable access to the flat row-major bid buffer — the equilibrium
    /// engine fans player rows out across threads via `chunks_mut`.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.bids
    }

    /// Returns `true` if every resource receives non-zero bids from at least
    /// two players — Zhang's *strongly competitive* condition under which an
    /// equilibrium is guaranteed to exist (Lemma 1 of the paper).
    pub fn is_strongly_competitive(&self) -> bool {
        (0..self.m).all(|j| (0..self.n).filter(|&i| self.get(i, j) > 0.0).count() >= 2)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_dimensions() {
        let b = BidMatrix::zeros(3, 2).unwrap();
        assert_eq!(b.players(), 3);
        assert_eq!(b.resources(), 2);
        assert_eq!(b.column_sum(0), 0.0);
        assert!(BidMatrix::zeros(0, 2).is_err());
        assert!(BidMatrix::zeros(2, 0).is_err());
    }

    #[test]
    fn equal_split_respects_budgets() {
        let b = BidMatrix::equal_split(&[100.0, 60.0], 4).unwrap();
        assert_eq!(b.get(0, 0), 25.0);
        assert_eq!(b.get(1, 3), 15.0);
        assert!((b.total_for_player(0) - 100.0).abs() < 1e-12);
        assert!((b.total_for_player(1) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn equal_split_rejects_negative_budget() {
        assert!(BidMatrix::equal_split(&[-1.0], 2).is_err());
        assert!(BidMatrix::equal_split(&[f64::NAN], 2).is_err());
    }

    #[test]
    fn others_sum_excludes_player() {
        let mut b = BidMatrix::zeros(3, 1).unwrap();
        b.set(0, 0, 10.0);
        b.set(1, 0, 20.0);
        b.set(2, 0, 30.0);
        assert_eq!(b.column_sum(0), 60.0);
        assert_eq!(b.others_sum(1, 0), 40.0);
    }

    #[test]
    fn row_accessors() {
        let mut b = BidMatrix::zeros(2, 3).unwrap();
        b.set_row(1, &[1.0, 2.0, 3.0]);
        assert_eq!(b.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(b.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn strongly_competitive_detection() {
        let mut b = BidMatrix::equal_split(&[10.0, 10.0], 2).unwrap();
        assert!(b.is_strongly_competitive());
        b.set(0, 1, 0.0);
        assert!(!b.is_strongly_competitive());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_panics_out_of_range() {
        let b = BidMatrix::zeros(2, 2).unwrap();
        let _ = b.get(2, 0);
    }
}
