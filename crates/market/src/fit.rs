//! Cobb–Douglas curve fitting.
//!
//! Zahedi & Lee's *Resource Elasticity Fairness* (REF / "elasticities
//! proportional", ASPLOS 2014) — one of the mechanisms the paper compares
//! against — assumes every application's utility "can be accurately
//! curve-fitted to a Cobb-Douglas function, where the coefficients are
//! used as the 'elasticities' of resources" (§1 of the paper). This module
//! performs that fit: given samples of an arbitrary utility, it finds the
//! least-squares Cobb–Douglas approximation in log space,
//!
//! `log U = log s + Σ_j e_j · log r_j`,
//!
//! which is ordinary linear regression on `(log r, log U)`.

use crate::utility::{CobbDouglas, Utility};
use crate::{MarketError, Result};

/// The result of a Cobb–Douglas fit.
#[derive(Debug, Clone, PartialEq)]
pub struct CobbDouglasFit {
    /// The fitted function.
    pub fitted: CobbDouglas,
    /// Root-mean-square error of `log U` over the samples (0 = perfect
    /// fit; large values mean the utility is *not* Cobb–Douglas shaped,
    /// the failure mode the paper warns about).
    pub log_rmse: f64,
}

/// Fits a Cobb–Douglas function to `(allocation, utility)` samples.
///
/// Samples with non-positive utility or allocations are skipped (they have
/// no log); at least `M + 2` usable samples are required.
///
/// # Examples
///
/// ```
/// use rebudget_market::fit::{fit_cobb_douglas, sample_utility};
/// use rebudget_market::utility::CobbDouglas;
///
/// # fn main() -> Result<(), rebudget_market::MarketError> {
/// let truth = CobbDouglas::new(1.0, vec![0.3, 0.7])?;
/// let samples = sample_utility(&truth, &[(1.0, 64.0), (1.0, 64.0)], 5);
/// let fit = fit_cobb_douglas(&samples)?;
/// assert!(fit.log_rmse < 1e-9); // exact family → perfect recovery
/// assert!((fit.fitted.elasticities()[1] - 0.7).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`MarketError::InvalidUtility`] if too few usable samples
/// remain or the regression is singular (e.g. all samples share one
/// allocation), and [`MarketError::DimensionMismatch`] on ragged input.
pub fn fit_cobb_douglas(samples: &[(Vec<f64>, f64)]) -> Result<CobbDouglasFit> {
    let m = samples
        .first()
        .map(|(r, _)| r.len())
        .ok_or_else(|| MarketError::InvalidUtility {
            reason: "no samples to fit".into(),
        })?;
    for (r, _) in samples {
        if r.len() != m {
            return Err(MarketError::DimensionMismatch {
                what: "fit sample",
                expected: m,
                actual: r.len(),
            });
        }
    }
    // Design matrix rows: [1, log r_1, …, log r_m]; target: log U.
    let rows: Vec<(Vec<f64>, f64)> = samples
        .iter()
        .filter(|(r, u)| *u > 0.0 && r.iter().all(|&x| x > 0.0))
        .map(|(r, u)| {
            let mut row = Vec::with_capacity(m + 1);
            row.push(1.0);
            row.extend(r.iter().map(|&x| x.ln()));
            (row, u.ln())
        })
        .collect();
    let dims = m + 1;
    if rows.len() < dims + 1 {
        return Err(MarketError::InvalidUtility {
            reason: format!(
                "need at least {} positive samples, got {}",
                dims + 1,
                rows.len()
            ),
        });
    }

    // Normal equations AᵀA x = Aᵀb, solved by Gaussian elimination with
    // partial pivoting (dims is tiny: M + 1).
    let mut ata = vec![vec![0.0; dims]; dims];
    let mut atb = vec![0.0; dims];
    for (row, y) in &rows {
        for i in 0..dims {
            atb[i] += row[i] * y;
            for j in 0..dims {
                ata[i][j] += row[i] * row[j];
            }
        }
    }
    let coeffs = solve(&mut ata, &mut atb).ok_or_else(|| MarketError::InvalidUtility {
        reason: "singular fit (degenerate samples)".into(),
    })?;

    let scale = coeffs[0].exp();
    // Clamp tiny negative elasticities from noise to zero.
    let elasticities: Vec<f64> = coeffs[1..].iter().map(|&e| e.max(0.0)).collect();
    let fitted = CobbDouglas::new(scale.max(1e-12), elasticities)?;

    let mut sse = 0.0;
    for (r, u) in samples
        .iter()
        .filter(|(r, u)| *u > 0.0 && r.iter().all(|&x| x > 0.0))
    {
        let err = fitted.value(r).max(1e-300).ln() - u.ln();
        sse += err * err;
    }
    let log_rmse = (sse / rows.len() as f64).sqrt();
    Ok(CobbDouglasFit { fitted, log_rmse })
}

/// Gaussian elimination with partial pivoting; returns `None` if singular.
fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        // total_cmp keeps the pivot scan panic-free on non-finite input;
        // a NaN/∞ pivot then reports the system as unsolvable instead of
        // propagating garbage.
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if !a[pivot][col].is_finite() || a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back-substitute.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Samples a [`Utility`] on a log-spaced grid over `(lo_j, hi_j)` ranges,
/// convenient input for [`fit_cobb_douglas`].
pub fn sample_utility(
    utility: &dyn Utility,
    ranges: &[(f64, f64)],
    points_per_axis: usize,
) -> Vec<(Vec<f64>, f64)> {
    let m = ranges.len();
    let p = points_per_axis.max(2);
    let axis: Vec<Vec<f64>> = ranges
        .iter()
        .map(|&(lo, hi)| {
            let lo = lo.max(1e-9);
            (0..p)
                .map(|k| lo * (hi / lo).powf(k as f64 / (p - 1) as f64))
                .collect()
        })
        .collect();
    let total = p.pow(m as u32);
    let mut samples = Vec::with_capacity(total);
    for idx in 0..total {
        let mut rem = idx;
        let mut r = Vec::with_capacity(m);
        for ax in &axis {
            r.push(ax[rem % p]);
            rem /= p;
        }
        let u = utility.value(&r);
        samples.push((r, u));
    }
    samples
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::utility::{GridUtility, SeparableUtility};

    #[test]
    fn recovers_exact_cobb_douglas() {
        let truth = CobbDouglas::new(2.0, vec![0.3, 0.6]).unwrap();
        let samples = sample_utility(&truth, &[(1.0, 100.0), (1.0, 50.0)], 5);
        let fit = fit_cobb_douglas(&samples).unwrap();
        assert!(fit.log_rmse < 1e-9, "rmse {}", fit.log_rmse);
        assert!((fit.fitted.elasticities()[0] - 0.3).abs() < 1e-6);
        assert!((fit.fitted.elasticities()[1] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn fits_separable_sqrt_with_moderate_error() {
        let caps = [16.0, 80.0];
        let u = SeparableUtility::proportional(&[0.5, 0.5], &caps).unwrap();
        let samples = sample_utility(&u, &[(0.5, 16.0), (2.0, 80.0)], 6);
        let fit = fit_cobb_douglas(&samples).unwrap();
        // Sum of square roots is not Cobb–Douglas; the fit works but is
        // imperfect — exactly the paper's point about EP.
        assert!(fit.log_rmse > 1e-4);
        assert!(fit.log_rmse < 1.0);
        assert!(fit.fitted.elasticities().iter().all(|&e| e >= 0.0));
    }

    #[test]
    fn cliffy_utility_fits_poorly() {
        // An mcf-like cliff is the worst case for Cobb–Douglas fitting.
        let smooth = GridUtility::new(
            vec![1.0, 8.0, 16.0],
            vec![1.0, 16.0],
            vec![0.5, 0.6, 0.55, 0.65, 0.9, 1.0],
        )
        .unwrap();
        let cliffy = GridUtility::new(
            vec![1.0, 8.0, 16.0],
            vec![1.0, 16.0],
            vec![0.2, 0.2, 0.2, 0.2, 1.0, 1.0],
        )
        .unwrap();
        let ranges = [(1.0, 16.0), (1.0, 16.0)];
        let smooth_fit = fit_cobb_douglas(&sample_utility(&smooth, &ranges, 6)).unwrap();
        let cliffy_fit = fit_cobb_douglas(&sample_utility(&cliffy, &ranges, 6)).unwrap();
        assert!(
            cliffy_fit.log_rmse > smooth_fit.log_rmse,
            "cliff {} should fit worse than smooth {}",
            cliffy_fit.log_rmse,
            smooth_fit.log_rmse
        );
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(fit_cobb_douglas(&[]).is_err());
        // All-zero utilities leave nothing to fit.
        let zeros = vec![(vec![1.0, 1.0], 0.0); 10];
        assert!(fit_cobb_douglas(&zeros).is_err());
        // Ragged samples.
        let ragged = vec![(vec![1.0, 1.0], 1.0), (vec![1.0], 1.0)];
        assert!(fit_cobb_douglas(&ragged).is_err());
        // Identical allocations are singular.
        let same = vec![(vec![2.0, 2.0], 1.0); 8];
        assert!(fit_cobb_douglas(&same).is_err());
    }

    #[test]
    fn sampler_covers_grid() {
        let truth = CobbDouglas::new(1.0, vec![0.5]).unwrap();
        let s = sample_utility(&truth, &[(1.0, 16.0)], 4);
        assert_eq!(s.len(), 4);
        assert!((s[0].0[0] - 1.0).abs() < 1e-9);
        assert!((s[3].0[0] - 16.0).abs() < 1e-9);
    }
}
