//! Dense first-order reference: the price-taking (Fisher) equilibrium on
//! dense storage.
//!
//! This is the same multiplicative dynamics as
//! [`crate::proportional_response`]/[`crate::mirror_descent`], run over a
//! dense bid matrix against the crate's full [`crate::Utility`] zoo: each
//! player re-spends its budget in proportion to
//! `b_ij · (∂U_i/∂x_ij · C_j / p̂_j)^γ` — bang-per-buck-weighted bids —
//! whose fixed point equalizes marginal utility per unit money across
//! each player's support, the Fisher-market first-order condition.
//!
//! # Why it exists
//!
//! The dense Jacobi engine computes the **price-anticipating** Nash
//! equilibrium of the paper (each player predicts how its bid moves
//! prices, Eq. 2); the sparse first-order solvers compute the
//! **price-taking** Fisher equilibrium. The two coincide as `N → ∞` but
//! differ at small `N`, so tight cross-validation of the sparse solvers
//! needs a dense engine that answers the *same* question — this module.
//! It is wired into [`crate::equilibrium::SolverKind`] dispatch, so
//! `Market::equilibrium` with `ProportionalResponse`/`MirrorDescent`
//! runs here and flows through the identical
//! `SolveReport`/deadline/telemetry plumbing as Jacobi (via
//! [`crate::first_order::drive`]).

use rebudget_telemetry as telemetry;

use crate::equilibrium::{
    push_recovery, EquilibriumOptions, EquilibriumOutcome, RecoveryAction, SolverKind,
};
use crate::par;
use crate::pricing;
use crate::{BidMatrix, Market, MarketError, Result};

/// Dense first-order solve: the entry point `equilibrium::find_equilibrium`
/// dispatches to for the non-Jacobi [`SolverKind`]s.
pub(crate) fn find_equilibrium_first_order(
    market: &Market,
    budgets: &[f64],
    options: &EquilibriumOptions,
    kind: SolverKind,
) -> Result<EquilibriumOutcome> {
    let gamma = match kind {
        SolverKind::ProportionalResponse => 1.0,
        SolverKind::MirrorDescent => crate::mirror_descent::DEFAULT_STEP,
        SolverKind::Jacobi => {
            // `find_equilibrium` routes Jacobi to its own engine; reaching
            // here means a caller bypassed the dispatch.
            return Err(MarketError::UnsupportedSolver {
                solver: SolverKind::Jacobi.label(),
                context: "the dense first-order reference",
            });
        }
    };
    let n = market.len();
    let m = market.resources().len();
    let capacities = market.resources().capacities();

    let _solve_span = telemetry::span!("solve");
    crate::first_order::emit_solve_start(n, m);

    // Row layout: m bids plus one sanitize-flag slot, so the parallel
    // sweep can report a poisoned row without shared mutable state.
    let stride = m + 1;
    let mut vals = vec![0.0; n * stride];
    for (i, row) in vals.chunks_exact_mut(stride).enumerate() {
        if m > 0 && budgets[i] > 0.0 {
            row[..m].fill(budgets[i] / m as f64);
        }
    }
    // Warm start: overlay usable seed rows, rescaled to the current
    // budget. Exact-zero seed entries are lifted to a tiny positive
    // floor (the multiplicative step can never revive a zero bid);
    // unusable rows keep the cold equal-split row.
    if let Some(warm) = options.warm_start.as_deref() {
        if warm.bids.len() == n * m {
            for (i, row) in vals.chunks_exact_mut(stride).enumerate() {
                crate::equilibrium::warm_overlay_multiplicative(
                    &mut row[..m],
                    &warm.bids[i * m..(i + 1) * m],
                    budgets[i],
                );
            }
        }
    }
    let mut init_money = vec![0.0; m];
    for row in vals.chunks_exact(stride) {
        for (sum, &b) in init_money.iter_mut().zip(row) {
            *sum += b;
        }
    }
    let threads = options.parallel.resolved_threads(n);

    let mut run = crate::first_order::drive(
        capacities,
        vals,
        init_money,
        options,
        |vals, money, damping, new_money| {
            par::for_each_row(
                threads,
                vals,
                stride,
                || (vec![0.0; m], vec![0.0; m]),
                |(x, w), i, row| {
                    row[m] = 0.0;
                    // Price-taking demand at the money snapshot.
                    for j in 0..m {
                        x[j] = if money[j] > 0.0 {
                            row[j] * capacities[j] / money[j]
                        } else {
                            0.0
                        };
                    }
                    let utility = market.players()[i].utility();
                    let mut w_sum = 0.0;
                    for j in 0..m {
                        let q = if money[j] > 0.0 {
                            utility.marginal(x, j).max(0.0) * capacities[j] / money[j]
                        } else {
                            0.0
                        };
                        w[j] = if gamma == 1.0 {
                            row[j] * q
                        } else {
                            row[j] * q.powf(gamma)
                        };
                        w_sum += w[j];
                    }
                    if !w_sum.is_finite() {
                        // Keep the old bids; flag the row for the report.
                        row[m] = 1.0;
                        return;
                    }
                    if w_sum <= 0.0 {
                        // Satiated or broke: nothing to re-spend.
                        return;
                    }
                    let scale = budgets[i] / w_sum;
                    for j in 0..m {
                        let target = scale * w[j];
                        row[j] = if damping < 1.0 {
                            (1.0 - damping) * row[j] + damping * target
                        } else {
                            target
                        };
                    }
                },
            );
            // Serial column totals in player order: deterministic under
            // every thread count.
            new_money.fill(0.0);
            let mut sanitized = 0u64;
            for row in vals.chunks_exact(stride) {
                for (sum, &b) in new_money.iter_mut().zip(row) {
                    *sum += b;
                }
                sanitized += row[m] as u64;
            }
            sanitized
        },
    );

    let mut bids = BidMatrix::zeros(n, m)?;
    for (i, row) in run.vals.chunks_exact(stride).enumerate() {
        for (j, &b) in row[..m].iter().enumerate() {
            bids.set(i, j, b);
        }
    }
    let prices = pricing::prices(&bids, market.resources());
    let allocation = pricing::allocate(&bids, market.resources());
    let mut utilities: Vec<f64> = (0..n)
        .map(|i| market.players()[i].utility_of(allocation.row(i)))
        .collect();
    for u in &mut utilities {
        if !u.is_finite() {
            *u = 0.0;
            push_recovery(
                &mut run.report.recovery,
                RecoveryAction::NonFiniteSanitized {
                    iteration: run.report.iterations,
                    what: "utility",
                },
            );
        }
    }
    // Price-taking marginal utility of money: the best bang-per-buck
    // available at the final allocation (the price-anticipating λ of the
    // Jacobi engine includes the player's own price impact; here players
    // are price takers by definition).
    let mut lambdas: Vec<f64> = (0..n)
        .map(|i| {
            let utility = market.players()[i].utility();
            (0..m)
                .map(|j| {
                    if run.money[j] > 0.0 {
                        utility.marginal(allocation.row(i), j) * capacities[j] / run.money[j]
                    } else {
                        0.0
                    }
                })
                .fold(0.0_f64, f64::max)
        })
        .collect();
    for l in &mut lambdas {
        if !l.is_finite() {
            *l = 0.0;
            push_recovery(
                &mut run.report.recovery,
                RecoveryAction::NonFiniteSanitized {
                    iteration: run.report.iterations,
                    what: "lambda",
                },
            );
        }
    }

    crate::first_order::emit_solve_end(&run.report);
    Ok(EquilibriumOutcome {
        bids,
        prices,
        allocation,
        utilities,
        lambdas,
        iterations: run.report.iterations,
        report: run.report,
        price_history: run.price_history,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::utility::{LinearUtility, SeparableUtility};
    use crate::{Player, ResourceSpace};
    use std::sync::Arc;

    fn tight(solver: SolverKind) -> EquilibriumOptions {
        let mut opts = EquilibriumOptions::large_scale().with_solver(solver);
        opts.max_iterations = 10_000;
        opts.price_tolerance = 1e-10;
        opts
    }

    fn linear_two_player() -> Market {
        // Asymmetric weights: a perfectly symmetric instance keeps the
        // aggregate money vector stationary while bids still move, which
        // would satisfy the price residual prematurely.
        let resources = ResourceSpace::new(vec![1.0, 1.0]).unwrap();
        Market::new(
            resources,
            vec![
                Player::new(
                    "a",
                    1.0,
                    Arc::new(LinearUtility::new(vec![3.0, 1.0]).unwrap()),
                ),
                Player::new(
                    "b",
                    1.0,
                    Arc::new(LinearUtility::new(vec![1.0, 2.0]).unwrap()),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn linear_market_hits_the_known_fisher_equilibrium() {
        let market = linear_two_player();
        let out = market
            .equilibrium(&tight(SolverKind::ProportionalResponse))
            .unwrap();
        assert!(out.converged(), "residual {}", out.report.residual);
        // Each player spends everything on its favorite good: p = (1, 1).
        assert!((out.prices[0] - 1.0).abs() < 1e-6, "{:?}", out.prices);
        assert!((out.prices[1] - 1.0).abs() < 1e-6, "{:?}", out.prices);
        assert!((out.allocation.get(0, 0) - 1.0).abs() < 1e-6);
        assert!((out.allocation.get(1, 1) - 1.0).abs() < 1e-6);
        // λ = best bang-per-buck at p = (1, 1): 3 for player a, 2 for b.
        assert!((out.lambdas[0] - 3.0).abs() < 1e-5, "{:?}", out.lambdas);
        assert!((out.lambdas[1] - 2.0).abs() < 1e-5, "{:?}", out.lambdas);
    }

    #[test]
    fn mirror_kind_reaches_the_same_equilibrium() {
        let market = linear_two_player();
        let pr = market
            .equilibrium(&tight(SolverKind::ProportionalResponse))
            .unwrap();
        let md = market
            .equilibrium(&tight(SolverKind::MirrorDescent))
            .unwrap();
        assert!(md.converged());
        for (a, b) in pr.prices.iter().zip(&md.prices) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn concave_separable_market_converges_cleanly() {
        let caps = [16.0, 80.0];
        let resources = ResourceSpace::new(caps.to_vec()).unwrap();
        let market = Market::new(
            resources,
            vec![
                Player::new(
                    "a",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&[0.8, 0.2], &caps).unwrap()),
                ),
                Player::new(
                    "b",
                    100.0,
                    Arc::new(SeparableUtility::proportional(&[0.3, 0.7], &caps).unwrap()),
                ),
            ],
        )
        .unwrap();
        let out = market
            .equilibrium(&tight(SolverKind::ProportionalResponse))
            .unwrap();
        assert!(out.converged(), "residual {}", out.report.residual);
        assert!(out
            .allocation
            .is_exhaustive(market.resources().capacities(), 1e-9));
        assert!(out.efficiency() > 0.0);
        assert!(out.utilities.iter().all(|u| u.is_finite()));
        assert!(out.lambdas.iter().all(|l| l.is_finite() && *l >= 0.0));
    }

    #[test]
    fn report_flows_like_the_jacobi_engine() {
        let market = linear_two_player();
        let mut opts = tight(SolverKind::ProportionalResponse);
        opts.record_history = true;
        let out = market.equilibrium(&opts).unwrap();
        assert_eq!(out.price_history.len() as u64, out.iterations);
        assert_eq!(out.price_history.last().unwrap(), &out.prices);
        assert!(out.report.residual <= opts.price_tolerance);
        assert!(out.report.ensure_converged().is_ok());
        assert!(out.report.ensure_within_deadline().is_ok());
    }

    #[test]
    fn jacobi_bypass_is_rejected() {
        let market = linear_two_player();
        let err = find_equilibrium_first_order(
            &market,
            &[1.0, 1.0],
            &EquilibriumOptions::default(),
            SolverKind::Jacobi,
        )
        .unwrap_err();
        assert!(matches!(err, MarketError::UnsupportedSolver { .. }));
    }
}
