//! Dense `N × M` allocation matrices.

use crate::{MarketError, Result};

/// The resource allocation of `N` players over `M` resources, stored
/// row-major (`alloc[i * m + j]` is the amount of resource `j` held by
/// player `i`).
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationMatrix {
    n: usize,
    m: usize,
    alloc: Vec<f64>,
}

impl AllocationMatrix {
    /// Creates an all-zero allocation for `n` players and `m` resources.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::Empty`] if `n` or `m` is zero.
    pub fn zeros(n: usize, m: usize) -> Result<Self> {
        if n == 0 {
            return Err(MarketError::Empty { what: "players" });
        }
        if m == 0 {
            return Err(MarketError::Empty { what: "resources" });
        }
        Ok(Self {
            n,
            m,
            alloc: vec![0.0; n * m],
        })
    }

    /// An equal split of `capacities` across `n` players — the *EqualShare*
    /// baseline of the paper's evaluation (§6).
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::Empty`] if `n` is zero or `capacities` is empty.
    pub fn equal_share(n: usize, capacities: &[f64]) -> Result<Self> {
        let mut a = Self::zeros(n, capacities.len())?;
        for i in 0..n {
            for (j, &c) in capacities.iter().enumerate() {
                a.set(i, j, c / n as f64);
            }
        }
        Ok(a)
    }

    /// Number of players `N`.
    pub fn players(&self) -> usize {
        self.n
    }

    /// Number of resources `M`.
    pub fn resources(&self) -> usize {
        self.m
    }

    /// Amount of resource `j` held by player `i`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.m, "allocation index out of range");
        self.alloc[i * self.m + j]
    }

    /// Sets the amount of resource `j` held by player `i`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn set(&mut self, i: usize, j: usize, amount: f64) {
        assert!(i < self.n && j < self.m, "allocation index out of range");
        self.alloc[i * self.m + j] = amount;
    }

    /// The allocation row (bundle) of player `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n, "player index out of range");
        &self.alloc[i * self.m..(i + 1) * self.m]
    }

    /// Overwrites the allocation row of player `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `row.len() != self.resources()`.
    pub fn set_row(&mut self, i: usize, row: &[f64]) {
        assert!(i < self.n, "player index out of range");
        assert_eq!(row.len(), self.m, "row length mismatch");
        self.alloc[i * self.m..(i + 1) * self.m].copy_from_slice(row);
    }

    /// Total amount of resource `j` handed out.
    pub fn column_sum(&self, j: usize) -> f64 {
        (0..self.n).map(|i| self.get(i, j)).sum()
    }

    /// Checks that each column sums to the corresponding capacity within
    /// `tol` (relative), i.e. the allocation is feasible and exhaustive.
    pub fn is_exhaustive(&self, capacities: &[f64], tol: f64) -> bool {
        capacities.len() == self.m
            && (0..self.m).all(|j| {
                let s = self.column_sum(j);
                (s - capacities[j]).abs() <= tol * capacities[j].max(1.0)
            })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn equal_share_is_exhaustive() {
        let a = AllocationMatrix::equal_share(4, &[16.0, 80.0]).unwrap();
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(3, 1), 20.0);
        assert!(a.is_exhaustive(&[16.0, 80.0], 1e-12));
        assert!(!a.is_exhaustive(&[17.0, 80.0], 1e-12));
    }

    #[test]
    fn rows_and_columns() {
        let mut a = AllocationMatrix::zeros(2, 2).unwrap();
        a.set_row(0, &[1.0, 2.0]);
        a.set(1, 0, 3.0);
        assert_eq!(a.row(0), &[1.0, 2.0]);
        assert_eq!(a.column_sum(0), 4.0);
        assert_eq!(a.column_sum(1), 2.0);
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(AllocationMatrix::zeros(0, 1).is_err());
        assert!(AllocationMatrix::zeros(1, 0).is_err());
        assert!(AllocationMatrix::equal_share(0, &[1.0]).is_err());
    }
}
