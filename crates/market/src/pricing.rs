//! Proportional pricing and allocation (Eq. 1 of the paper).

use crate::{AllocationMatrix, BidMatrix, ResourceSpace};

/// Computes the per-resource prices `p_j = Σ_i b_ij / C_j`.
pub fn prices(bids: &BidMatrix, resources: &ResourceSpace) -> Vec<f64> {
    (0..resources.len())
        .map(|j| bids.column_sum(j) / resources.capacity(j))
        .collect()
}

/// Computes the proportional allocation `r_ij = b_ij / p_j`.
///
/// With proportional prices this hands out the entire capacity of every
/// resource that received any bid (`Σ_i r_ij = C_j`). A resource nobody bid
/// on has price zero; its capacity is split equally so that the allocation
/// remains exhaustive ("the remaining resources will be entirely
/// distributed", §5 of the paper).
pub fn allocate(bids: &BidMatrix, resources: &ResourceSpace) -> AllocationMatrix {
    let n = bids.players();
    let m = bids.resources();
    let p = prices(bids, resources);
    // A BidMatrix is constructed with ≥1 player and ≥1 resource, so the
    // zero-dimension error is unreachable here.
    let mut alloc = AllocationMatrix::zeros(n, m)
        .unwrap_or_else(|_| unreachable!("BidMatrix guarantees non-zero dimensions"));
    for j in 0..m {
        if p[j] > 0.0 {
            for i in 0..n {
                alloc.set(i, j, bids.get(i, j) / p[j]);
            }
        } else {
            let share = resources.capacity(j) / n as f64;
            for i in 0..n {
                alloc.set(i, j, share);
            }
        }
    }
    alloc
}

/// Predicted amount of resource a player receives if it bids `bid` while
/// the others' bids on that resource total `others` (Eq. 2 of the paper):
/// `r = bid / (bid + others) · capacity`.
///
/// When both `bid` and `others` are zero the prediction is an equal share of
/// nothing — we return 0 to keep the bidder conservative.
pub fn predicted_share(bid: f64, others: f64, capacity: f64) -> f64 {
    let total = bid + others;
    if total <= 0.0 {
        0.0
    } else {
        bid / total * capacity
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn prices_match_eq1() {
        let resources = ResourceSpace::new(vec![4.0, 10.0]).unwrap();
        let mut bids = BidMatrix::zeros(2, 2).unwrap();
        bids.set(0, 0, 6.0);
        bids.set(1, 0, 2.0);
        bids.set(0, 1, 5.0);
        bids.set(1, 1, 5.0);
        let p = prices(&bids, &resources);
        assert_eq!(p, vec![2.0, 1.0]);
    }

    #[test]
    fn allocation_is_proportional_and_exhaustive() {
        let resources = ResourceSpace::new(vec![4.0, 10.0]).unwrap();
        let mut bids = BidMatrix::zeros(2, 2).unwrap();
        bids.set(0, 0, 6.0);
        bids.set(1, 0, 2.0);
        bids.set(0, 1, 5.0);
        bids.set(1, 1, 5.0);
        let a = allocate(&bids, &resources);
        assert!((a.get(0, 0) - 3.0).abs() < 1e-12);
        assert!((a.get(1, 0) - 1.0).abs() < 1e-12);
        assert!(a.is_exhaustive(resources.capacities(), 1e-12));
    }

    #[test]
    fn unbid_resource_split_equally() {
        let resources = ResourceSpace::new(vec![4.0, 10.0]).unwrap();
        let mut bids = BidMatrix::zeros(2, 2).unwrap();
        bids.set(0, 0, 1.0);
        bids.set(1, 0, 1.0);
        // Nobody bids on resource 1.
        let a = allocate(&bids, &resources);
        assert_eq!(a.get(0, 1), 5.0);
        assert_eq!(a.get(1, 1), 5.0);
        assert!(a.is_exhaustive(resources.capacities(), 1e-12));
    }

    #[test]
    fn predicted_share_matches_eq2() {
        assert!((predicted_share(2.0, 6.0, 16.0) - 4.0).abs() < 1e-12);
        assert_eq!(predicted_share(0.0, 0.0, 16.0), 0.0);
        assert_eq!(predicted_share(3.0, 0.0, 16.0), 16.0);
    }
}
