//! The `rebudget` command-line tool. All logic lives in the library so it
//! can be unit-tested; see [`rebudget_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match rebudget_cli::run_with_notes(&args) {
        Ok((output, notes)) => {
            // Notes (resume/progress chatter) go to stderr so stdout stays
            // byte-stable for diffing resumed runs against references.
            for note in notes {
                eprintln!("note: {note}");
            }
            print!("{output}");
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.code);
        }
    }
}
