//! The `rebudget` command-line tool. All logic lives in the library so it
//! can be unit-tested; see [`rebudget_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match rebudget_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
