#![warn(missing_docs)]

//! Argument handling and command implementations for the `rebudget` CLI.
//!
//! The binary (`src/main.rs`) is a thin shell over [`run`], so everything
//! is unit-testable. Subcommands:
//!
//! ```text
//! rebudget apps                          list the 24 application models
//! rebudget workloads <CATEGORY> <CORES>  print generated bundles
//! rebudget solve <CATEGORY|bbpc> <CORES> [MECHANISM] [STEP]
//! rebudget sweep <CATEGORY|bbpc> <CORES> sweep the ReBudget step knob
//! rebudget simulate <CATEGORY|bbpc> <CORES> [QUANTA]
//! rebudget theory <MUR> <MBR>            evaluate the Theorem 1/2 bounds
//! ```

use std::fmt::Write as _;

use rebudget_apps::classify::{sensitivity, Envelope};
use rebudget_apps::perf::PerfEnv;
use rebudget_apps::spec::all_apps;
use rebudget_core::mechanisms::{
    Balanced, EqualBudget, EqualShare, MaxEfficiency, Mechanism, ReBudget,
};
use rebudget_core::sweep::sweep_steps;
use rebudget_core::theory::{ef_lower_bound, poa_lower_bound};
use rebudget_market::FaultPlan;
use rebudget_sim::analytic::build_market;
use rebudget_sim::{run_simulation, DramConfig, SimOptions, SystemConfig};
use rebudget_workloads::{generate_bundle, paper_bbpc_8core, Bundle, Category};

/// CLI-level error: a message for the user plus the exit code.
#[derive(Debug)]
pub struct CliError {
    /// Message printed to stderr.
    pub message: String,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

fn err(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
    }
}

/// Usage text.
pub const USAGE: &str = "\
rebudget — market-based multicore resource allocation (ReBudget, ASPLOS'16)

USAGE:
    rebudget apps
    rebudget workloads <CATEGORY> <CORES> [SEED]
    rebudget solve <CATEGORY|bbpc> <CORES> [MECHANISM] [STEP]
    rebudget sweep <CATEGORY|bbpc> <CORES>
    rebudget simulate <CATEGORY|bbpc> <CORES> [QUANTA] [--seed=N] [--faults=SPEC]
    rebudget theory <MUR> <MBR>

CATEGORY:   CPBN | CCPP | CPBB | BBNN | BBPN | BBCN (case-insensitive)
MECHANISM:  equalshare | equalbudget | balanced | rebudget | maxefficiency
FAULTS:     comma-separated spec injecting telemetry/solver faults, e.g.
            --faults=noise=0.1,drop=0.05,liars=2 — keys: noise, spike,
            spike-mag, stale, stale-depth, drop, nan, liars, liar-factor,
            seed (defaults to --seed)
";

/// Parses a mechanism name (with an optional ReBudget step).
pub fn parse_mechanism(name: &str, step: Option<f64>) -> Result<Box<dyn Mechanism>, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "equalshare" => Ok(Box::new(EqualShare)),
        "equalbudget" => Ok(Box::new(EqualBudget::new(100.0))),
        "balanced" => Ok(Box::new(Balanced::new(100.0))),
        "rebudget" => Ok(Box::new(ReBudget::with_step(100.0, step.unwrap_or(20.0)))),
        "maxefficiency" => Ok(Box::new(MaxEfficiency::default())),
        other => Err(err(format!("unknown mechanism '{other}'"))),
    }
}

fn parse_bundle(category: &str, cores: usize, seed: u64) -> Result<Bundle, CliError> {
    if category.eq_ignore_ascii_case("bbpc") {
        if cores != 8 {
            return Err(err("the paper's bbpc case-study bundle is 8-core"));
        }
        return Ok(paper_bbpc_8core());
    }
    let cat = Category::from_name(category)
        .ok_or_else(|| err(format!("unknown category '{category}'")))?;
    generate_bundle(cat, cores, 0, seed).map_err(|e| err(e.to_string()))
}

fn system_for(cores: usize) -> (SystemConfig, DramConfig) {
    let sys = match cores {
        8 => SystemConfig::paper_8core(),
        64 => SystemConfig::paper_64core(),
        n => SystemConfig::scaled(n),
    };
    (sys, DramConfig::ddr3_1600())
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, CliError> {
    s.parse().map_err(|_| err(format!("invalid {what}: '{s}'")))
}

/// Removes `--name=value` (or `--name value`) from `args`, returning the
/// value if the flag was present.
fn extract_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, CliError> {
    let prefix = format!("--{name}=");
    let bare = format!("--{name}");
    for i in 0..args.len() {
        if let Some(v) = args[i].strip_prefix(&prefix) {
            let v = v.to_string();
            args.remove(i);
            return Ok(Some(v));
        }
        if args[i] == bare {
            if i + 1 >= args.len() {
                return Err(err(format!("--{name} requires a value")));
            }
            let v = args.remove(i + 1);
            args.remove(i);
            return Ok(Some(v));
        }
    }
    Ok(None)
}

/// Runs the CLI with `args` (excluding the program name); returns the
/// text to print on stdout.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message for bad input.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut out = String::new();
    let mut args = args.to_vec();
    let seed: Option<u64> = extract_flag(&mut args, "seed")?
        .map(|s| parse(&s, "seed"))
        .transpose()?;
    let faults: Option<FaultPlan> = match extract_flag(&mut args, "faults")? {
        Some(spec) => {
            let plan = FaultPlan::parse(&spec)
                .map_err(|e| err(format!("invalid --faults spec {spec:?}: {e}")))?;
            // --seed doubles as the fault seed unless the spec pins one.
            let plan = match seed {
                Some(n) if !spec.contains("seed=") => plan.with_seed(n),
                _ => plan,
            };
            Some(plan)
        }
        None => None,
    };
    match args.first().map(String::as_str) {
        Some("apps") => {
            writeln!(
                out,
                "{:<12} {:<14} {:<6} {:>10} {:>11} {:>9}",
                "name", "suite", "class", "cache-gain", "power-gain", "activity"
            )
            .expect("writing to String cannot fail");
            for app in all_apps() {
                let s = sensitivity(app, &PerfEnv::paper(), &Envelope::paper());
                writeln!(
                    out,
                    "{:<12} {:<14} {:<6} {:>10.3} {:>11.3} {:>9.2}",
                    app.name,
                    format!("{:?}", app.suite),
                    app.class.letter(),
                    s.cache_gain,
                    s.power_gain,
                    app.activity
                )
                .expect("writing to String cannot fail");
            }
            Ok(out)
        }
        Some("workloads") => {
            let category = args.get(1).ok_or_else(|| err(USAGE))?;
            let cores: usize = parse(args.get(2).ok_or_else(|| err(USAGE))?, "core count")?;
            let seed: u64 = args
                .get(3)
                .map(|s| parse(s, "seed"))
                .transpose()?
                .unwrap_or(1);
            let cat = Category::from_name(category)
                .ok_or_else(|| err(format!("unknown category '{category}'")))?;
            for index in 0..5 {
                let b = generate_bundle(cat, cores, index, seed).map_err(|e| err(e.to_string()))?;
                writeln!(out, "{}: {}", b.label(), b.app_names().join(" "))
                    .expect("writing to String cannot fail");
            }
            Ok(out)
        }
        Some("solve") => {
            let category = args.get(1).ok_or_else(|| err(USAGE))?;
            let cores: usize = parse(args.get(2).ok_or_else(|| err(USAGE))?, "core count")?;
            let step: Option<f64> = args.get(4).map(|s| parse(s, "step")).transpose()?;
            let mech =
                parse_mechanism(args.get(3).map(String::as_str).unwrap_or("rebudget"), step)?;
            let bundle = parse_bundle(category, cores, 1)?;
            let (sys, dram) = system_for(cores);
            let market =
                build_market(&bundle, &sys, &dram, 100.0).map_err(|e| err(e.to_string()))?;
            let o = mech.allocate(&market).map_err(|e| err(e.to_string()))?;
            writeln!(out, "bundle      {}", bundle.label()).expect("infallible");
            writeln!(out, "mechanism   {}", o.mechanism).expect("infallible");
            writeln!(
                out,
                "efficiency  {:.4} (weighted speedup, max {})",
                o.efficiency, cores
            )
            .expect("infallible");
            writeln!(out, "envy-free   {:.4}", o.envy_freeness).expect("infallible");
            if let (Some(mur), Some(mbr)) = (o.mur, o.mbr) {
                writeln!(
                    out,
                    "MUR         {mur:.4}  (PoA floor {:.4})",
                    poa_lower_bound(mur)
                )
                .expect("infallible");
                writeln!(
                    out,
                    "MBR         {mbr:.4}  (EF floor {:.4})",
                    ef_lower_bound(mbr)
                )
                .expect("infallible");
                writeln!(
                    out,
                    "rounds      {} ({} iterations)",
                    o.equilibrium_rounds, o.total_iterations
                )
                .expect("infallible");
            }
            Ok(out)
        }
        Some("sweep") => {
            let category = args.get(1).ok_or_else(|| err(USAGE))?;
            let cores: usize = parse(args.get(2).ok_or_else(|| err(USAGE))?, "core count")?;
            let bundle = parse_bundle(category, cores, 1)?;
            let (sys, dram) = system_for(cores);
            let market =
                build_market(&bundle, &sys, &dram, 100.0).map_err(|e| err(e.to_string()))?;
            let pts = sweep_steps(&market, 100.0, &[0.0, 5.0, 10.0, 20.0, 40.0, 80.0], true)
                .map_err(|e| err(e.to_string()))?;
            writeln!(
                out,
                "{:>6} {:>10} {:>10} {:>8} {:>8} {:>10}",
                "step", "eff/OPT", "envy-free", "MUR", "MBR", "EF-floor"
            )
            .expect("infallible");
            for p in pts {
                writeln!(
                    out,
                    "{:>6.0} {:>10.3} {:>10.3} {:>8.3} {:>8.3} {:>10.3}",
                    p.step,
                    p.normalized_efficiency.unwrap_or(f64::NAN),
                    p.envy_freeness,
                    p.mur,
                    p.mbr,
                    p.ef_floor
                )
                .expect("infallible");
            }
            Ok(out)
        }
        Some("simulate") => {
            let category = args.get(1).ok_or_else(|| err(USAGE))?;
            let cores: usize = parse(args.get(2).ok_or_else(|| err(USAGE))?, "core count")?;
            let quanta: usize = args
                .get(3)
                .map(|s| parse(s, "quanta"))
                .transpose()?
                .unwrap_or(5);
            let bundle = parse_bundle(category, cores, 1)?;
            let (sys, dram) = system_for(cores);
            let injecting = faults.as_ref().is_some_and(FaultPlan::is_active);
            let opts = SimOptions {
                quanta,
                accesses_per_quantum: 10_000,
                budget: 100.0,
                use_monitors: true,
                seed: seed.unwrap_or(1),
                faults,
                ..SimOptions::default()
            };
            if injecting {
                writeln!(
                    out,
                    "{:<14} {:>14} {:>10} {:>9} {:>9} {:>10}",
                    "mechanism",
                    "weighted-speedup",
                    "envy-free",
                    "degraded",
                    "fallback",
                    "recoveries"
                )
                .expect("infallible");
            } else {
                writeln!(
                    out,
                    "{:<14} {:>14} {:>10}",
                    "mechanism", "weighted-speedup", "envy-free"
                )
                .expect("infallible");
            }
            for mech_name in ["equalshare", "equalbudget", "rebudget", "maxefficiency"] {
                let mech = parse_mechanism(mech_name, Some(40.0))?;
                let r = run_simulation(&sys, &dram, &bundle, mech.as_ref(), &opts)
                    .map_err(|e| err(e.to_string()))?;
                if injecting {
                    writeln!(
                        out,
                        "{:<14} {:>14.3} {:>10.3} {:>9} {:>9} {:>10}",
                        r.mechanism,
                        r.efficiency,
                        r.envy_freeness,
                        r.degraded_quanta,
                        r.fallback_quanta,
                        r.solver_recoveries
                    )
                    .expect("infallible");
                } else {
                    writeln!(
                        out,
                        "{:<14} {:>14.3} {:>10.3}",
                        r.mechanism, r.efficiency, r.envy_freeness
                    )
                    .expect("infallible");
                }
            }
            Ok(out)
        }
        Some("theory") => {
            let mur: f64 = parse(args.get(1).ok_or_else(|| err(USAGE))?, "MUR")?;
            let mbr: f64 = parse(args.get(2).ok_or_else(|| err(USAGE))?, "MBR")?;
            writeln!(
                out,
                "PoA >= {:.4}  (Theorem 1 at MUR {mur:.3})",
                poa_lower_bound(mur)
            )
            .expect("infallible");
            writeln!(
                out,
                "EF  >= {:.4}  (Theorem 2 at MBR {mbr:.3})",
                ef_lower_bound(mbr)
            )
            .expect("infallible");
            Ok(out)
        }
        Some("help") | Some("--help") | Some("-h") | None => Ok(USAGE.to_string()),
        Some(other) => Err(err(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(args: &[&str]) -> String {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&v).expect("command succeeds")
    }

    #[test]
    fn help_and_unknown() {
        assert!(run_ok(&[]).contains("USAGE"));
        assert!(run_ok(&["help"]).contains("USAGE"));
        let e = run(&["frobnicate".to_string()]).unwrap_err();
        assert!(e.message.contains("unknown command"));
    }

    #[test]
    fn apps_lists_24() {
        let out = run_ok(&["apps"]);
        assert_eq!(out.lines().count(), 25, "header + 24 apps");
        assert!(out.contains("mcf"));
        assert!(out.contains("sixtrack"));
    }

    #[test]
    fn workloads_prints_bundles() {
        let out = run_ok(&["workloads", "cpbn", "8"]);
        assert_eq!(out.lines().count(), 5);
        assert!(out.contains("CPBN#00"));
        assert!(run(&["workloads".into(), "zzz".into(), "8".into()]).is_err());
        assert!(run(&["workloads".into(), "cpbn".into(), "7".into()]).is_err());
    }

    #[test]
    fn solve_reports_metrics() {
        let out = run_ok(&["solve", "bbpc", "8", "rebudget", "20"]);
        assert!(out.contains("ReBudget-20"));
        assert!(out.contains("MUR"));
        assert!(out.contains("PoA floor"));
        let out = run_ok(&["solve", "bbpc", "8", "equalshare"]);
        assert!(out.contains("EqualShare"));
        assert!(!out.contains("MUR"), "no market metrics without a market");
    }

    #[test]
    fn sweep_produces_six_rows() {
        let out = run_ok(&["sweep", "bbpc", "8"]);
        assert_eq!(out.lines().count(), 7, "header + 6 steps");
    }

    #[test]
    fn theory_evaluates_bounds() {
        let out = run_ok(&["theory", "1.0", "1.0"]);
        assert!(out.contains("0.7500"));
        assert!(out.contains("0.8284"));
    }

    #[test]
    fn mechanism_parsing() {
        assert!(parse_mechanism("balanced", None).is_ok());
        assert!(parse_mechanism("REBUDGET", Some(40.0)).is_ok());
        assert!(parse_mechanism("magic", None).is_err());
    }

    #[test]
    fn bbpc_requires_8_cores() {
        assert!(run(&["solve".into(), "bbpc".into(), "64".into()]).is_err());
    }

    #[test]
    fn simulate_with_faults_reports_degradation_columns() {
        let out = run_ok(&[
            "simulate",
            "bbpc",
            "8",
            "2",
            "--faults=noise=0.2,drop=0.3",
            "--seed=7",
        ]);
        assert!(out.contains("degraded"));
        assert!(out.contains("fallback"));
        assert!(out.contains("ReBudget-40"));
        // Without faults the extra columns stay hidden.
        let plain = run_ok(&["simulate", "bbpc", "8", "2"]);
        assert!(!plain.contains("degraded"));
    }

    #[test]
    fn bad_fault_spec_is_rejected() {
        let e = run(&[
            "simulate".into(),
            "bbpc".into(),
            "8".into(),
            "--faults=bogus=1".into(),
        ])
        .unwrap_err();
        assert!(e.message.contains("invalid --faults spec"));
    }

    #[test]
    fn flag_extraction_handles_both_forms() {
        let mut a: Vec<String> = vec!["simulate".into(), "--seed=9".into(), "bbpc".into()];
        assert_eq!(extract_flag(&mut a, "seed").unwrap().as_deref(), Some("9"));
        assert_eq!(a, vec!["simulate".to_string(), "bbpc".to_string()]);
        let mut b: Vec<String> = vec!["--faults".into(), "noise=0.1".into()];
        assert_eq!(
            extract_flag(&mut b, "faults").unwrap().as_deref(),
            Some("noise=0.1")
        );
        assert!(b.is_empty());
        let mut c: Vec<String> = vec!["--faults".into()];
        assert!(extract_flag(&mut c, "faults").is_err());
    }
}
