#![warn(missing_docs)]

//! Argument handling and command implementations for the `rebudget` CLI.
//!
//! The binary (`src/main.rs`) is a thin shell over [`run`], so everything
//! is unit-testable. Subcommands:
//!
//! ```text
//! rebudget apps                          list the 24 application models
//! rebudget workloads <CATEGORY> <CORES>  print generated bundles
//! rebudget solve <CATEGORY|bbpc> <CORES> [MECHANISM] [STEP]
//! rebudget sweep <CATEGORY|bbpc> <CORES> sweep the ReBudget step knob
//! rebudget simulate <CATEGORY|bbpc> <CORES> [QUANTA]
//! rebudget synth <PLAYERS> <RESOURCES>   solve a synthetic sparse market
//! rebudget theory <MUR> <MBR>            evaluate the Theorem 1/2 bounds
//! rebudget scenario <list|check|run|audit> declarative adversarial scenarios
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use rebudget_apps::classify::{sensitivity, Envelope};
use rebudget_apps::perf::PerfEnv;
use rebudget_apps::spec::all_apps;
use rebudget_core::mechanisms::{
    Balanced, EqualBudget, EqualShare, MaxEfficiency, Mechanism, ReBudget,
};
use rebudget_core::sweep::{sweep_oracle, sweep_point, sweep_steps, SweepPoint};
use rebudget_core::theory::{ef_lower_bound, poa_lower_bound};
use rebudget_market::equilibrium::EquilibriumOptions;
use rebudget_market::{
    DeadlineBudget, FaultPlan, ParallelPolicy, RetryPolicy, SolverKind, SparseUtilityKind,
    SynthSpec,
};
use rebudget_scenario::{run_scenario, Scenario, ScenarioError};
use rebudget_sim::analytic::build_market;
use rebudget_sim::checkpoint::{fnv1a, SweepCheckpoint, SweepMeta};
use rebudget_sim::{
    run_simulation_recoverable, DramConfig, RecoveryOptions, SimOptions, SimResult, SystemConfig,
};
use rebudget_telemetry as telemetry;
use rebudget_workloads::{generate_bundle, paper_bbpc_8core, Bundle, Category};

pub mod exit;

pub use exit::{EXIT_CHECKPOINT, EXIT_PROPERTY, EXIT_SERVER, EXIT_USAGE};

/// CLI-level error: a message for the user plus the exit code.
#[derive(Debug)]
pub struct CliError {
    /// Message printed to stderr.
    pub message: String,
    /// Process exit code ([`EXIT_USAGE`] or [`EXIT_CHECKPOINT`]).
    pub code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

fn err(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
        code: EXIT_USAGE,
    }
}

fn checkpoint_err(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
        code: EXIT_CHECKPOINT,
    }
}

fn property_err(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
        code: EXIT_PROPERTY,
    }
}

fn server_err(e: &rebudget_server::ServerError) -> CliError {
    match e {
        // A bad serve configuration is a usage slip, not a daemon fault.
        rebudget_server::ServerError::Config { reason } => err(reason.clone()),
        other => CliError {
            message: other.to_string(),
            code: EXIT_SERVER,
        },
    }
}

/// Usage text.
pub const USAGE: &str = "\
rebudget — market-based multicore resource allocation (ReBudget, ASPLOS'16)

USAGE:
    rebudget apps
    rebudget workloads <CATEGORY> <CORES> [SEED]
    rebudget solve <CATEGORY|bbpc> <CORES> [MECHANISM] [STEP]
    rebudget sweep <CATEGORY|bbpc> <CORES> [--checkpoint=PATH] [--resume=PATH]
    rebudget simulate <CATEGORY|bbpc> <CORES> [QUANTA] [--seed=N] [--faults=SPEC]
                      [--mechanism=NAME] [--checkpoint=PATH] [--checkpoint-every=N]
                      [--resume=PATH] [--deadline-ms=N] [--solve-iters=N] [--retries=N]
    rebudget synth <PLAYERS> <RESOURCES> [--seed=N] [--tol=X] [--solve-iters=N]
                   [--leontief]
    rebudget theory <MUR> <MBR>
    rebudget scenario list <DIR|FILE>...
    rebudget scenario check <DIR|FILE>...
    rebudget scenario run <DIR|FILE>... [--ledger=DIR]
    rebudget scenario audit <LEDGER>...
    rebudget serve (--socket=PATH | --tcp=ADDR) --state-dir=DIR
                   [--resources=N] [--capacity=X] [--solver=NAME] [--seed=N]
                   [--tick-ms=N] [--max-ticks=N] [--queue-cap=N] [--frame-cap=N]
                   [--read-timeout-ms=N] [--fallback-after=K] [--commit-delay-ms=N]
                   [--tol=X] [--deadline-ms=N] [--solve-iters=N] [--retries=N]

CATEGORY:   CPBN | CCPP | CPBB | BBNN | BBPN | BBCN (case-insensitive)
MECHANISM:  equalshare | equalbudget | balanced | rebudget | maxefficiency
SOLVER:     every market-backed subcommand accepts --solver=NAME selecting
            the equilibrium engine: jacobi (dense best-response, the
            paper's engine, the default), propresp (first-order
            proportional response), mirror (first-order entropic mirror
            descent). synth is sparse-only: it defaults to propresp and
            rejects jacobi.
FAULTS:     comma-separated spec injecting telemetry/solver faults, e.g.
            --faults=noise=0.1,drop=0.05,liars=2 — keys: noise, spike,
            spike-mag, stale, stale-depth, drop, nan, liars, liar-factor,
            seed (defaults to --seed)
RECOVERY:   --checkpoint writes an atomic snapshot every --checkpoint-every
            quanta (default 1; sweep: every point); --resume replays a
            snapshot and continues. simulate snapshots cover one mechanism,
            so --checkpoint/--resume require --mechanism.
DEADLINES:  --solve-iters bounds each equilibrium solve's iterations,
            --deadline-ms bounds its wall-clock time (non-deterministic;
            prefer --solve-iters for reproducible runs), --retries enables
            a bounded retry ladder for failed or timed-out solves.
SCENARIOS:  TOML files declaring phases, triggered adversarial events,
            and properties to verify (Theorem-1/2 floors, convergence,
            no-NaN, ledger replay, resume identity). `list` summarises,
            `check` parses and validates without running, `run` executes
            against the real simulation loop (writing a hash-chained
            allocation ledger per scenario with --ledger=DIR) and exits 4
            naming each violated property, `audit` re-verifies a ledger
            file's hash chain and seal.
SERVER:     `serve` runs the fault-tolerant online market daemon:
            newline-delimited JSON requests (arrive | update | depart |
            tick | stats | shutdown) over a Unix socket (--socket) or TCP
            (--tcp). Mutations are admission-batched behind a bounded
            queue (--queue-cap, overflow is shed) and applied at ticks —
            explicit `tick` commands by default, or every --tick-ms.
            Each tick re-solves the market warm-started from the previous
            quantum and commits a hash-chained ledger plus a crash-atomic
            snapshot under --state-dir, so `kill -9` at any point resumes
            byte-identically. After --fallback-after consecutive failed
            solves the daemon degrades to EqualShare until one converges.
            `scenario audit` verifies the sealed ledger. Exit code 5 for
            daemon failures.
OBSERVING:  every subcommand also accepts --trace=PATH (write a JSONL
            event journal, crash-atomically, without touching stdout),
            --metrics (append a counters/gauges/histograms section), and
            --profile (append per-span wall-clock timings). Tracing never
            changes allocations: a traced run is bit-identical to an
            untraced one.
";

/// Solver-robustness knobs shared by all market-backed mechanisms.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverKnobs {
    /// Per-solve deadline (wall clock and/or iterations).
    pub deadline: DeadlineBudget,
    /// Optional bounded retry ladder.
    pub retry: Option<RetryPolicy>,
    /// Equilibrium engine for the inner solves (`--solver=`).
    pub solver: SolverKind,
}

/// Parses a mechanism name (with an optional ReBudget step).
pub fn parse_mechanism(name: &str, step: Option<f64>) -> Result<Box<dyn Mechanism>, CliError> {
    parse_mechanism_with(name, step, SolverKnobs::default())
}

/// Parses a mechanism name and installs deadline/retry solver knobs.
pub fn parse_mechanism_with(
    name: &str,
    step: Option<f64>,
    knobs: SolverKnobs,
) -> Result<Box<dyn Mechanism>, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "equalshare" => Ok(Box::new(EqualShare)),
        "equalbudget" => {
            let mut m = EqualBudget::new(100.0);
            m.options.deadline = knobs.deadline;
            m.options.solver = knobs.solver;
            m.retry = knobs.retry;
            Ok(Box::new(m))
        }
        "balanced" => {
            let mut m = Balanced::new(100.0);
            m.options.deadline = knobs.deadline;
            m.options.solver = knobs.solver;
            m.retry = knobs.retry;
            Ok(Box::new(m))
        }
        "rebudget" => {
            let mut m = ReBudget::with_step(100.0, step.unwrap_or(20.0));
            m.options.deadline = knobs.deadline;
            m.options.solver = knobs.solver;
            m.retry = knobs.retry;
            Ok(Box::new(m))
        }
        "maxefficiency" => {
            let mut m = MaxEfficiency::default();
            m.options.deadline = knobs.deadline;
            Ok(Box::new(m))
        }
        other => Err(err(format!("unknown mechanism '{other}'"))),
    }
}

fn parse_bundle(category: &str, cores: usize, seed: u64) -> Result<Bundle, CliError> {
    if category.eq_ignore_ascii_case("bbpc") {
        if cores != 8 {
            return Err(err("the paper's bbpc case-study bundle is 8-core"));
        }
        return Ok(paper_bbpc_8core());
    }
    let cat = Category::from_name(category)
        .ok_or_else(|| err(format!("unknown category '{category}'")))?;
    generate_bundle(cat, cores, 0, seed).map_err(|e| err(e.to_string()))
}

fn system_for(cores: usize) -> (SystemConfig, DramConfig) {
    let sys = match cores {
        8 => SystemConfig::paper_8core(),
        64 => SystemConfig::paper_64core(),
        n => SystemConfig::scaled(n),
    };
    (sys, DramConfig::ddr3_1600())
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, CliError> {
    s.parse().map_err(|_| err(format!("invalid {what}: '{s}'")))
}

/// Removes a bare boolean `--name` switch from `args`; true if present.
fn extract_switch(args: &mut Vec<String>, name: &str) -> bool {
    let bare = format!("--{name}");
    let before = args.len();
    args.retain(|a| *a != bare);
    args.len() != before
}

/// Removes `--name=value` (or `--name value`) from `args`, returning the
/// value if the flag was present.
fn extract_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, CliError> {
    let prefix = format!("--{name}=");
    let bare = format!("--{name}");
    for i in 0..args.len() {
        if let Some(v) = args[i].strip_prefix(&prefix) {
            let v = v.to_string();
            args.remove(i);
            return Ok(Some(v));
        }
        if args[i] == bare {
            if i + 1 >= args.len() {
                return Err(err(format!("--{name} requires a value")));
            }
            let v = args.remove(i + 1);
            args.remove(i);
            return Ok(Some(v));
        }
    }
    Ok(None)
}

/// Expands scenario arguments: a directory contributes every `*.toml`
/// directly inside it (sorted by name, so CI matrices are order-stable);
/// a file contributes itself.
fn scenario_paths(args: &[String]) -> Result<Vec<PathBuf>, CliError> {
    let mut paths = Vec::new();
    for arg in args {
        let p = PathBuf::from(arg);
        if p.is_dir() {
            let entries =
                std::fs::read_dir(&p).map_err(|e| err(format!("cannot read '{arg}': {e}")))?;
            let mut found = Vec::new();
            for entry in entries {
                let path = entry
                    .map_err(|e| err(format!("cannot read '{arg}': {e}")))?
                    .path();
                if path.is_file() && path.extension().is_some_and(|x| x == "toml") {
                    found.push(path);
                }
            }
            if found.is_empty() {
                return Err(err(format!("no .toml scenarios in '{arg}'")));
            }
            found.sort();
            paths.extend(found);
        } else if p.is_file() {
            paths.push(p);
        } else {
            return Err(err(format!("no such scenario file or directory: '{arg}'")));
        }
    }
    if paths.is_empty() {
        return Err(err(
            "scenario subcommands need at least one file or directory",
        ));
    }
    Ok(paths)
}

fn load_scenario(path: &Path) -> Result<Scenario, CliError> {
    Scenario::load(path).map_err(|e| scenario_err(path, &e))
}

fn scenario_err(path: &Path, e: &ScenarioError) -> CliError {
    let message = format!("{}: {e}", path.display());
    match e {
        // A bad ledger is an integrity violation, not a usage slip.
        ScenarioError::Ledger { .. } => property_err(message),
        _ => err(message),
    }
}

fn sim_err(e: &rebudget_sim::simulation::SimError) -> CliError {
    match e {
        rebudget_sim::simulation::SimError::Checkpoint(c) => checkpoint_err(c.to_string()),
        other => err(other.to_string()),
    }
}

/// FNV-1a fingerprint over the bit patterns of a run's final metrics.
/// Two runs fingerprint identically iff their efficiency, envy-freeness,
/// per-core utilities, and full efficiency trajectory are bit-identical —
/// the CI interrupt/resume job diffs this line.
fn result_fingerprint(r: &SimResult) -> u64 {
    let mut bytes = Vec::with_capacity(16 + 8 * (r.utilities.len() + r.efficiency_history.len()));
    bytes.extend_from_slice(&r.efficiency.to_bits().to_be_bytes());
    bytes.extend_from_slice(&r.envy_freeness.to_bits().to_be_bytes());
    for u in &r.utilities {
        bytes.extend_from_slice(&u.to_bits().to_be_bytes());
    }
    for e in &r.efficiency_history {
        bytes.extend_from_slice(&e.to_bits().to_be_bytes());
    }
    fnv1a(&bytes)
}

/// Runs the CLI with `args` (excluding the program name); returns the
/// text to print on stdout.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message for bad input.
pub fn run(args: &[String]) -> Result<String, CliError> {
    run_with_notes(args).map(|(out, _)| out)
}

/// Like [`run`], additionally returning progress/resume notes that the
/// binary prints to **stderr** — keeping stdout byte-stable so a resumed
/// run can be diffed against an uninterrupted reference.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message for bad input.
pub fn run_with_notes(args: &[String]) -> Result<(String, Vec<String>), CliError> {
    let mut notes = Vec::new();
    let out = run_inner(args, &mut notes)?;
    Ok((out, notes))
}

fn run_inner(args: &[String], notes: &mut Vec<String>) -> Result<String, CliError> {
    let mut args = args.to_vec();
    let trace: Option<PathBuf> = extract_flag(&mut args, "trace")?.map(PathBuf::from);
    let metrics = extract_switch(&mut args, "metrics");
    let profile = extract_switch(&mut args, "profile");
    let observing = trace.is_some() || metrics || profile;
    if observing {
        telemetry::reset();
        telemetry::set_enabled(true);
        telemetry::record(
            telemetry::Event::new("trace_meta")
                .field_u64("version", telemetry::journal::TRACE_VERSION)
                .field_str("command", &args.join(" ")),
        );
    }
    let result = dispatch(&args, notes);
    if observing {
        telemetry::set_enabled(false);
    }
    let mut out = result?;
    if let Some(path) = &trace {
        telemetry::global()
            .journal
            .flush_to(path)
            .map_err(|e| err(format!("cannot write trace to '{}': {e}", path.display())))?;
    }
    if metrics {
        out.push_str(
            "
metrics:
",
        );
        for line in telemetry::global()
            .registry
            .snapshot()
            .render_table()
            .lines()
        {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    if profile {
        let snap = telemetry::global().registry.snapshot();
        out.push_str(
            "
profile (wall-clock per span):
",
        );
        let mut any = false;
        for (name, h) in &snap.histograms {
            if let Some(path) = name.strip_prefix("span.") {
                any = true;
                out.push_str(&format!(
                    "  {path:<40} n={:<6} mean={:.3}ms max≈{:.3}ms
",
                    h.count,
                    h.mean() / 1e6,
                    h.max_bucket_floor() as f64 / 1e6,
                ));
            }
        }
        if !any {
            out.push_str(
                "  (no spans recorded)
",
            );
        }
    }
    Ok(out)
}

fn dispatch(args: &[String], notes: &mut Vec<String>) -> Result<String, CliError> {
    let mut out = String::new();
    let mut args = args.to_vec();
    let seed: Option<u64> = extract_flag(&mut args, "seed")?
        .map(|s| parse(&s, "seed"))
        .transpose()?;
    let mechanism_flag: Option<String> = extract_flag(&mut args, "mechanism")?;
    let checkpoint: Option<PathBuf> = extract_flag(&mut args, "checkpoint")?.map(PathBuf::from);
    let checkpoint_every: usize = extract_flag(&mut args, "checkpoint-every")?
        .map(|s| parse(&s, "checkpoint interval"))
        .transpose()?
        .unwrap_or(1);
    if checkpoint_every == 0 {
        return Err(err("--checkpoint-every must be at least 1"));
    }
    let resume: Option<PathBuf> = extract_flag(&mut args, "resume")?.map(PathBuf::from);
    let deadline_ms: Option<u64> = extract_flag(&mut args, "deadline-ms")?
        .map(|s| parse(&s, "deadline (ms)"))
        .transpose()?;
    let solve_iters: Option<usize> = extract_flag(&mut args, "solve-iters")?
        .map(|s| parse(&s, "solve iteration budget"))
        .transpose()?;
    let retries: Option<usize> = extract_flag(&mut args, "retries")?
        .map(|s| parse(&s, "retry count"))
        .transpose()?;
    let solver_flag: Option<String> = extract_flag(&mut args, "solver")?;
    let ledger_dir: Option<PathBuf> = extract_flag(&mut args, "ledger")?.map(PathBuf::from);
    let leontief = extract_switch(&mut args, "leontief");
    let tol: Option<f64> = extract_flag(&mut args, "tol")?
        .map(|s| parse(&s, "tolerance"))
        .transpose()?;
    let solver = match &solver_flag {
        Some(name) => SolverKind::parse(name).ok_or_else(|| {
            err(format!(
                "unknown solver '{name}' (expected jacobi | propresp | mirror)"
            ))
        })?,
        None => SolverKind::default(),
    };
    let knobs = SolverKnobs {
        // `checked` rejects zero budgets (they admit no work) as a
        // usage error before any solve runs.
        deadline: DeadlineBudget::checked(deadline_ms, solve_iters)
            .map_err(|e| err(e.to_string()))?,
        retry: retries.map(|n| RetryPolicy::with_attempts(n.saturating_add(1))),
        solver,
    };
    let faults: Option<FaultPlan> = match extract_flag(&mut args, "faults")? {
        Some(spec) => {
            let plan = FaultPlan::parse(&spec)
                .map_err(|e| err(format!("invalid --faults spec {spec:?}: {e}")))?;
            // --seed doubles as the fault seed unless the spec pins one.
            let plan = match seed {
                Some(n) if !spec.contains("seed=") => plan.with_seed(n),
                _ => plan,
            };
            Some(plan)
        }
        None => None,
    };
    match args.first().map(String::as_str) {
        Some("apps") => {
            writeln!(
                out,
                "{:<12} {:<14} {:<6} {:>10} {:>11} {:>9}",
                "name", "suite", "class", "cache-gain", "power-gain", "activity"
            )
            .expect("writing to String cannot fail");
            for app in all_apps() {
                let s = sensitivity(app, &PerfEnv::paper(), &Envelope::paper());
                writeln!(
                    out,
                    "{:<12} {:<14} {:<6} {:>10.3} {:>11.3} {:>9.2}",
                    app.name,
                    format!("{:?}", app.suite),
                    app.class.letter(),
                    s.cache_gain,
                    s.power_gain,
                    app.activity
                )
                .expect("writing to String cannot fail");
            }
            Ok(out)
        }
        Some("workloads") => {
            let category = args.get(1).ok_or_else(|| err(USAGE))?;
            let cores: usize = parse(args.get(2).ok_or_else(|| err(USAGE))?, "core count")?;
            let seed: u64 = args
                .get(3)
                .map(|s| parse(s, "seed"))
                .transpose()?
                .unwrap_or(1);
            let cat = Category::from_name(category)
                .ok_or_else(|| err(format!("unknown category '{category}'")))?;
            for index in 0..5 {
                let b = generate_bundle(cat, cores, index, seed).map_err(|e| err(e.to_string()))?;
                writeln!(out, "{}: {}", b.label(), b.app_names().join(" "))
                    .expect("writing to String cannot fail");
            }
            Ok(out)
        }
        Some("solve") => {
            let category = args.get(1).ok_or_else(|| err(USAGE))?;
            let cores: usize = parse(args.get(2).ok_or_else(|| err(USAGE))?, "core count")?;
            let step: Option<f64> = args.get(4).map(|s| parse(s, "step")).transpose()?;
            let mech = parse_mechanism_with(
                args.get(3).map(String::as_str).unwrap_or("rebudget"),
                step,
                knobs,
            )?;
            let bundle = parse_bundle(category, cores, 1)?;
            let (sys, dram) = system_for(cores);
            let market =
                build_market(&bundle, &sys, &dram, 100.0).map_err(|e| err(e.to_string()))?;
            let o = mech.allocate(&market).map_err(|e| err(e.to_string()))?;
            writeln!(out, "bundle      {}", bundle.label()).expect("infallible");
            writeln!(out, "mechanism   {}", o.mechanism).expect("infallible");
            writeln!(
                out,
                "efficiency  {:.4} (weighted speedup, max {})",
                o.efficiency, cores
            )
            .expect("infallible");
            writeln!(out, "envy-free   {:.4}", o.envy_freeness).expect("infallible");
            if let (Some(mur), Some(mbr)) = (o.mur, o.mbr) {
                writeln!(
                    out,
                    "MUR         {mur:.4}  (PoA floor {:.4})",
                    poa_lower_bound(mur)
                )
                .expect("infallible");
                writeln!(
                    out,
                    "MBR         {mbr:.4}  (EF floor {:.4})",
                    ef_lower_bound(mbr)
                )
                .expect("infallible");
                writeln!(
                    out,
                    "rounds      {} ({} iterations)",
                    o.equilibrium_rounds, o.total_iterations
                )
                .expect("infallible");
            }
            Ok(out)
        }
        Some("sweep") => {
            let category = args.get(1).ok_or_else(|| err(USAGE))?;
            let cores: usize = parse(args.get(2).ok_or_else(|| err(USAGE))?, "core count")?;
            if cores == 0 {
                return Err(err("core count must be at least 1"));
            }
            let bundle = parse_bundle(category, cores, 1)?;
            let (sys, dram) = system_for(cores);
            let market =
                build_market(&bundle, &sys, &dram, 100.0).map_err(|e| err(e.to_string()))?;
            let steps = [0.0, 5.0, 10.0, 20.0, 40.0, 80.0];
            let pts: Vec<SweepPoint> = if checkpoint.is_some() || resume.is_some() {
                // Durable sweep: one snapshot per completed point, so a
                // killed sweep resumes at the point boundary. Per-point
                // values are a pure function of the inputs, so reused and
                // recomputed points are bit-identical.
                let meta = SweepMeta {
                    category: category.to_ascii_lowercase(),
                    cores,
                    base_budget: 100.0,
                    normalize: true,
                    steps: steps.to_vec(),
                };
                let save_path = checkpoint.clone().or_else(|| resume.clone());
                let mut cp = match &resume {
                    Some(path) => {
                        let (loaded, used_prev) = SweepCheckpoint::load_with_fallback(path)
                            .map_err(|e| checkpoint_err(e.to_string()))?;
                        meta.ensure_matches(&loaded.meta)
                            .map_err(|e| checkpoint_err(e.to_string()))?;
                        if used_prev {
                            notes.push(
                                "resume used the rotated .prev snapshot generation \
                                 (live snapshot failed validation)"
                                    .to_string(),
                            );
                        }
                        let done = steps.len() - loaded.missing().len();
                        notes.push(format!(
                            "resumed sweep: {done} of {} points reused from snapshot",
                            steps.len()
                        ));
                        loaded
                    }
                    None => SweepCheckpoint::new(meta),
                };
                if cp.oracle.is_none() {
                    cp.oracle = Some(
                        sweep_oracle(&market, ParallelPolicy::Auto)
                            .map_err(|e| err(e.to_string()))?,
                    );
                    if let Some(path) = &save_path {
                        cp.save(path).map_err(|e| checkpoint_err(e.to_string()))?;
                    }
                }
                for k in cp.missing() {
                    let p = sweep_point(&market, 100.0, steps[k], cp.oracle, ParallelPolicy::Auto)
                        .map_err(|e| err(e.to_string()))?;
                    cp.points[k] = Some(p);
                    if let Some(path) = &save_path {
                        cp.save(path).map_err(|e| checkpoint_err(e.to_string()))?;
                    }
                }
                cp.points.into_iter().flatten().collect()
            } else {
                sweep_steps(&market, 100.0, &steps, true).map_err(|e| err(e.to_string()))?
            };
            writeln!(
                out,
                "{:>6} {:>10} {:>10} {:>8} {:>8} {:>10} {:>5} {:>6} {:>6} {:>4} {:>6} {:>4}",
                "step",
                "eff/OPT",
                "envy-free",
                "MUR",
                "MBR",
                "EF-floor",
                "conv",
                "rounds",
                "iters",
                "rec",
                "retry",
                "t/o"
            )
            .expect("infallible");
            for p in pts {
                writeln!(
                    out,
                    "{:>6.0} {:>10.3} {:>10.3} {:>8.3} {:>8.3} {:>10.3} {:>5} {:>6} {:>6} {:>4} {:>6} {:>4}",
                    p.step,
                    p.normalized_efficiency.unwrap_or(f64::NAN),
                    p.envy_freeness,
                    p.mur,
                    p.mbr,
                    p.ef_floor,
                    if p.solve.converged { "yes" } else { "NO" },
                    p.solve.rounds,
                    p.solve.iterations,
                    p.solve.recoveries,
                    p.solve.retries,
                    p.solve.timed_out
                )
                .expect("infallible");
            }
            Ok(out)
        }
        Some("simulate") => {
            let category = args.get(1).ok_or_else(|| err(USAGE))?;
            let cores: usize = parse(args.get(2).ok_or_else(|| err(USAGE))?, "core count")?;
            if cores == 0 {
                return Err(err("core count must be at least 1"));
            }
            let quanta: usize = args
                .get(3)
                .map(|s| parse(s, "quanta"))
                .transpose()?
                .unwrap_or(5);
            if quanta == 0 {
                return Err(err("quanta must be at least 1"));
            }
            let bundle = parse_bundle(category, cores, 1)?;
            let (sys, dram) = system_for(cores);
            let injecting = faults.as_ref().is_some_and(FaultPlan::is_active);
            let opts = SimOptions {
                quanta,
                accesses_per_quantum: 10_000,
                budget: 100.0,
                use_monitors: true,
                seed: seed.unwrap_or(1),
                faults,
                ..SimOptions::default()
            };
            if (checkpoint.is_some() || resume.is_some()) && mechanism_flag.is_none() {
                return Err(err(
                    "--checkpoint/--resume snapshot a single mechanism's run; \
                     pick one with --mechanism",
                ));
            }
            let recovery = RecoveryOptions {
                checkpoint,
                checkpoint_every,
                resume,
            };
            let bounded = knobs.deadline.is_bounded() || knobs.retry.is_some();
            let mech_names: Vec<&str> = match &mechanism_flag {
                Some(name) => vec![name.as_str()],
                None => vec!["equalshare", "equalbudget", "rebudget", "maxefficiency"],
            };
            write!(
                out,
                "{:<14} {:>14} {:>10}",
                "mechanism", "weighted-speedup", "envy-free"
            )
            .expect("infallible");
            if injecting {
                write!(
                    out,
                    " {:>9} {:>9} {:>10}",
                    "degraded", "fallback", "recoveries"
                )
                .expect("infallible");
            }
            if bounded {
                write!(out, " {:>7} {:>8}", "retries", "timeouts").expect("infallible");
            }
            writeln!(out).expect("infallible");
            let mut fingerprint = None;
            for mech_name in &mech_names {
                let mech = parse_mechanism_with(mech_name, Some(40.0), knobs)?;
                let r = run_simulation_recoverable(
                    &sys,
                    &dram,
                    &bundle,
                    mech.as_ref(),
                    &opts,
                    &recovery,
                )
                .map_err(|e| sim_err(&e))?;
                if r.replayed_quanta > 0 {
                    notes.push(format!(
                        "{}: resumed — replayed {} of {} quanta from snapshot",
                        r.mechanism, r.replayed_quanta, quanta
                    ));
                }
                if r.used_prev_generation {
                    notes.push(
                        "resume used the rotated .prev snapshot generation \
                         (live snapshot failed validation)"
                            .to_string(),
                    );
                }
                write!(
                    out,
                    "{:<14} {:>14.3} {:>10.3}",
                    r.mechanism, r.efficiency, r.envy_freeness
                )
                .expect("infallible");
                if injecting {
                    write!(
                        out,
                        " {:>9} {:>9} {:>10}",
                        r.degraded_quanta, r.fallback_quanta, r.solver_recoveries
                    )
                    .expect("infallible");
                }
                if bounded {
                    write!(out, " {:>7} {:>8}", r.retried_solves, r.timed_out_solves)
                        .expect("infallible");
                }
                writeln!(out).expect("infallible");
                fingerprint = Some(result_fingerprint(&r));
            }
            if mech_names.len() == 1 {
                if let Some(fp) = fingerprint {
                    // Bit-exact digest of the run's final state; identical
                    // between an uninterrupted run and a killed-and-resumed
                    // one. CI diffs this line.
                    writeln!(out, "fingerprint {fp:016x}").expect("infallible");
                }
            }
            Ok(out)
        }
        Some("synth") => {
            let players: usize = parse(args.get(1).ok_or_else(|| err(USAGE))?, "player count")?;
            let resources: usize = parse(args.get(2).ok_or_else(|| err(USAGE))?, "resource count")?;
            if players == 0 || resources == 0 {
                return Err(err("player and resource counts must be at least 1"));
            }
            // Sparse-only path: the dense Jacobi engine would need an
            // n×m bid matrix, which defeats the point at 10⁶ players.
            let solver = match solver {
                SolverKind::Jacobi if solver_flag.is_some() => {
                    return Err(err(
                        "synth markets are sparse; pick --solver=propresp or --solver=mirror",
                    ));
                }
                SolverKind::Jacobi => SolverKind::ProportionalResponse,
                first_order => first_order,
            };
            let mut spec = SynthSpec::new(players, resources, seed.unwrap_or(1));
            if leontief {
                spec.kind = SparseUtilityKind::Leontief;
            }
            let market = spec.generate().map_err(|e| err(e.to_string()))?;
            let mut opts = EquilibriumOptions::large_scale().with_solver(solver);
            opts.deadline = knobs.deadline;
            if let Some(t) = tol {
                if !(t.is_finite() && t > 0.0) {
                    return Err(err("--tol must be a positive number"));
                }
                opts.price_tolerance = t;
            }
            let started = std::time::Instant::now();
            let o = market.solve(&opts).map_err(|e| err(e.to_string()))?;
            // Wall-clock goes to stderr: stdout stays byte-stable across
            // machines (and across --trace on/off).
            notes.push(format!(
                "solved in {:.3}s ({} iterations)",
                started.elapsed().as_secs_f64(),
                o.iterations
            ));
            writeln!(out, "players     {players}").expect("infallible");
            writeln!(out, "resources   {resources}").expect("infallible");
            writeln!(out, "nnz         {}", market.nnz()).expect("infallible");
            writeln!(out, "kind        {}", market.kind().label()).expect("infallible");
            writeln!(out, "solver      {}", solver.label()).expect("infallible");
            writeln!(out, "iterations  {}", o.iterations).expect("infallible");
            writeln!(
                out,
                "converged   {}",
                if o.converged() { "yes" } else { "NO" }
            )
            .expect("infallible");
            writeln!(out, "residual    {:.3e}", o.report.residual).expect("infallible");
            writeln!(out, "efficiency  {:.4}", o.efficiency()).expect("infallible");
            Ok(out)
        }
        Some("scenario") => {
            let sub = args.get(1).map(String::as_str).ok_or_else(|| err(USAGE))?;
            let rest = &args[2..];
            match sub {
                "list" => {
                    let paths = scenario_paths(rest)?;
                    writeln!(
                        out,
                        "{:<28} {:<9} {:<14} {:>5} {:>7} {:>6} {:>10}",
                        "scenario",
                        "workload",
                        "mechanism",
                        "cores",
                        "quanta",
                        "events",
                        "properties"
                    )
                    .expect("infallible");
                    for path in &paths {
                        let s = load_scenario(path)?;
                        writeln!(
                            out,
                            "{:<28} {:<9} {:<14} {:>5} {:>7} {:>6} {:>10}",
                            s.name,
                            s.workload,
                            s.mechanism,
                            s.cores,
                            s.total_quanta(),
                            s.events.len(),
                            s.properties.len()
                        )
                        .expect("infallible");
                    }
                    Ok(out)
                }
                "check" => {
                    let paths = scenario_paths(rest)?;
                    for path in &paths {
                        let s = load_scenario(path)?;
                        writeln!(out, "ok {:<28} {}", s.name, path.display()).expect("infallible");
                    }
                    writeln!(out, "{} scenario(s) valid", paths.len()).expect("infallible");
                    Ok(out)
                }
                "run" => {
                    let paths = scenario_paths(rest)?;
                    let mut violations: Vec<String> = Vec::new();
                    writeln!(
                        out,
                        "{:<28} {:>10} {:>10} {:>6} {:>10}",
                        "scenario", "efficiency", "envy-free", "events", "properties"
                    )
                    .expect("infallible");
                    for path in &paths {
                        let s = load_scenario(path)?;
                        let outcome = run_scenario(&s).map_err(|e| scenario_err(path, &e))?;
                        if let Some(dir) = &ledger_dir {
                            std::fs::create_dir_all(dir).map_err(|e| {
                                err(format!("cannot create '{}': {e}", dir.display()))
                            })?;
                            let lp = dir.join(format!("{}.ledger", s.name));
                            // Ledgers are immutable artifacts: the
                            // collision with an existing one is a named
                            // error, not an overwrite.
                            use std::io::Write as _;
                            rebudget_scenario::create_new_ledger_file(&lp)
                                .map_err(|e| {
                                    err(format!("cannot write ledger '{}': {e}", lp.display()))
                                })
                                .and_then(|mut f| {
                                    f.write_all(outcome.ledger.as_bytes()).map_err(|e| {
                                        err(format!("cannot write ledger '{}': {e}", lp.display()))
                                    })
                                })?;
                        }
                        let passed = outcome.reports.iter().filter(|r| r.passed).count();
                        writeln!(
                            out,
                            "{:<28} {:>10.3} {:>10.3} {:>6} {:>7}/{:<2}",
                            outcome.name,
                            outcome.result.efficiency,
                            outcome.result.envy_freeness,
                            outcome.fired.len(),
                            passed,
                            outcome.reports.len()
                        )
                        .expect("infallible");
                        for report in outcome.violations() {
                            violations.push(format!(
                                "{}: property '{}' violated: {}",
                                outcome.name, report.property, report.detail
                            ));
                        }
                    }
                    if violations.is_empty() {
                        Ok(out)
                    } else {
                        Err(property_err(format!(
                            "{} scenario property violation(s):\n  {}",
                            violations.len(),
                            violations.join("\n  ")
                        )))
                    }
                }
                "audit" => {
                    if rest.is_empty() {
                        return Err(err("scenario audit needs at least one ledger file"));
                    }
                    for arg in rest {
                        let text = std::fs::read_to_string(arg)
                            .map_err(|e| err(format!("cannot read '{arg}': {e}")))?;
                        let summary = rebudget_scenario::ledger::verify(&text)
                            .map_err(|e| property_err(format!("{arg}: {e}")))?;
                        writeln!(
                            out,
                            "ok {:<28} {} record(s), fnv1a {:016x}",
                            summary.scenario, summary.records, summary.fnv1a
                        )
                        .expect("infallible");
                    }
                    Ok(out)
                }
                other => Err(err(format!(
                    "unknown scenario subcommand '{other}' (list | check | run | audit)"
                ))),
            }
        }
        Some("serve") => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let socket: Option<PathBuf> = extract_flag(&mut rest, "socket")?.map(PathBuf::from);
            let tcp: Option<String> = extract_flag(&mut rest, "tcp")?;
            let state_dir: PathBuf = extract_flag(&mut rest, "state-dir")?
                .map(PathBuf::from)
                .ok_or_else(|| err("serve needs --state-dir=DIR for its ledger and snapshot"))?;
            let resources: usize = extract_flag(&mut rest, "resources")?
                .map(|s| parse(&s, "resource count"))
                .transpose()?
                .unwrap_or(16);
            let capacity: f64 = extract_flag(&mut rest, "capacity")?
                .map(|s| parse(&s, "capacity"))
                .transpose()?
                .unwrap_or(100.0);
            let tick_ms: Option<u64> = extract_flag(&mut rest, "tick-ms")?
                .map(|s| parse(&s, "tick interval (ms)"))
                .transpose()?;
            let max_ticks: Option<u64> = extract_flag(&mut rest, "max-ticks")?
                .map(|s| parse(&s, "tick limit"))
                .transpose()?;
            let queue_cap: usize = extract_flag(&mut rest, "queue-cap")?
                .map(|s| parse(&s, "admission queue bound"))
                .transpose()?
                .unwrap_or(1024);
            let frame_cap: usize = extract_flag(&mut rest, "frame-cap")?
                .map(|s| parse(&s, "frame byte cap"))
                .transpose()?
                .unwrap_or(64 * 1024);
            let read_timeout_ms: u64 = extract_flag(&mut rest, "read-timeout-ms")?
                .map(|s| parse(&s, "read timeout (ms)"))
                .transpose()?
                .unwrap_or(5_000);
            let fallback_after: usize = extract_flag(&mut rest, "fallback-after")?
                .map(|s| parse(&s, "fallback threshold"))
                .transpose()?
                .unwrap_or(3);
            let commit_delay_ms: u64 = extract_flag(&mut rest, "commit-delay-ms")?
                .map(|s| parse(&s, "commit delay (ms)"))
                .transpose()?
                .unwrap_or(0);
            // Online re-solves run at a looser tolerance than the batch
            // pipeline's 1e-6 default: at 1e-4 the warm start converges
            // in a fraction of the cold iterations (see the server
            // bench), while at 1e-6 the slow geometric tail dominates
            // both arms and the advantage vanishes. (`--tol` itself is
            // a global flag, extracted with the other solver knobs.)
            let tol = tol.unwrap_or(1e-4);
            if !tol.is_finite() || tol <= 0.0 {
                return Err(err("--tol must be a positive number"));
            }
            if let Some(extra) = rest.first() {
                return Err(err(format!("unexpected serve argument '{extra}'")));
            }
            let endpoint = match (&socket, &tcp) {
                (Some(p), None) => rebudget_server::Endpoint::Unix(p.clone()),
                (None, Some(a)) => rebudget_server::Endpoint::Tcp(a.clone()),
                (None, None) => return Err(err("serve needs --socket=PATH or --tcp=ADDR")),
                (Some(_), Some(_)) => return Err(err("serve takes --socket or --tcp, not both")),
            };
            // The daemon defaults to the sparse first-order engine — the
            // dense paper engine only on an explicit --solver=jacobi.
            let solver = if solver_flag.is_some() {
                knobs.solver
            } else {
                SolverKind::ProportionalResponse
            };
            let mut options = EquilibriumOptions::large_scale().with_solver(solver);
            options.deadline = knobs.deadline;
            options.price_tolerance = tol;
            let config = rebudget_server::ServerConfig {
                capacities: vec![capacity; resources],
                solver,
                options,
                retry: knobs.retry.unwrap_or_default(),
                fallback_after,
                seed: seed.unwrap_or(0),
                commit_delay_ms,
            };
            let dconfig = rebudget_server::DaemonConfig {
                queue_cap,
                frame_cap,
                read_timeout: std::time::Duration::from_millis(read_timeout_ms),
                tick_interval: tick_ms.map(std::time::Duration::from_millis),
                max_ticks,
            };
            let core = rebudget_server::ServerCore::open(config, &state_dir)
                .map_err(|e| server_err(&e))?;
            let daemon = rebudget_server::Daemon::new(core, dconfig);
            let listener =
                rebudget_server::Listener::bind(&endpoint).map_err(|e| server_err(&e))?;
            // Readiness goes straight to stderr: notes only print after
            // the (long-running) serve loop returns, and stdout stays
            // reserved for the final summary.
            eprintln!(
                "serving on {} at tick {} ({} player(s){})",
                listener.local_addr,
                daemon.core().tick_index(),
                daemon.core().players(),
                if daemon.core().recovered_from_prev() {
                    ", recovered from .prev snapshot"
                } else {
                    ""
                },
            );
            let summary = daemon.serve(listener).map_err(|e| server_err(&e))?;
            let s = summary.stats;
            writeln!(
                out,
                "sealed {} record(s) after {} tick(s)",
                summary.records, summary.ticks
            )
            .expect("infallible");
            writeln!(
                out,
                "requests {} = accepted {} + rejected {} + shed {} + malformed {} + control {}",
                s.requests, s.accepted, s.rejected, s.shed, s.malformed, s.control
            )
            .expect("infallible");
            writeln!(
                out,
                "oversized {} slowloris {} disconnects {} fallback-ticks {}",
                s.oversized, s.slowloris, s.disconnects, s.fallback_ticks
            )
            .expect("infallible");
            Ok(out)
        }
        Some("theory") => {
            let mur: f64 = parse(args.get(1).ok_or_else(|| err(USAGE))?, "MUR")?;
            let mbr: f64 = parse(args.get(2).ok_or_else(|| err(USAGE))?, "MBR")?;
            writeln!(
                out,
                "PoA >= {:.4}  (Theorem 1 at MUR {mur:.3})",
                poa_lower_bound(mur)
            )
            .expect("infallible");
            writeln!(
                out,
                "EF  >= {:.4}  (Theorem 2 at MBR {mbr:.3})",
                ef_lower_bound(mbr)
            )
            .expect("infallible");
            Ok(out)
        }
        Some("help") | Some("--help") | Some("-h") | None => Ok(USAGE.to_string()),
        Some(other) => Err(err(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(args: &[&str]) -> String {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&v).expect("command succeeds")
    }

    #[test]
    fn help_and_unknown() {
        assert!(run_ok(&[]).contains("USAGE"));
        assert!(run_ok(&["help"]).contains("USAGE"));
        let e = run(&["frobnicate".to_string()]).unwrap_err();
        assert!(e.message.contains("unknown command"));
    }

    #[test]
    fn apps_lists_24() {
        let out = run_ok(&["apps"]);
        assert_eq!(out.lines().count(), 25, "header + 24 apps");
        assert!(out.contains("mcf"));
        assert!(out.contains("sixtrack"));
    }

    #[test]
    fn workloads_prints_bundles() {
        let out = run_ok(&["workloads", "cpbn", "8"]);
        assert_eq!(out.lines().count(), 5);
        assert!(out.contains("CPBN#00"));
        assert!(run(&["workloads".into(), "zzz".into(), "8".into()]).is_err());
        assert!(run(&["workloads".into(), "cpbn".into(), "7".into()]).is_err());
    }

    #[test]
    fn solve_reports_metrics() {
        let out = run_ok(&["solve", "bbpc", "8", "rebudget", "20"]);
        assert!(out.contains("ReBudget-20"));
        assert!(out.contains("MUR"));
        assert!(out.contains("PoA floor"));
        let out = run_ok(&["solve", "bbpc", "8", "equalshare"]);
        assert!(out.contains("EqualShare"));
        assert!(!out.contains("MUR"), "no market metrics without a market");
    }

    #[test]
    fn sweep_produces_six_rows() {
        let out = run_ok(&["sweep", "bbpc", "8"]);
        assert_eq!(out.lines().count(), 7, "header + 6 steps");
    }

    #[test]
    fn synth_solves_a_sparse_market_deterministically() {
        let out = run_ok(&["synth", "1000", "16", "--seed=3"]);
        assert!(out.contains("players     1000"), "{out}");
        assert!(out.contains("solver      propresp"), "{out}");
        assert!(out.contains("kind        linear"), "{out}");
        assert!(out.contains("converged   yes"), "{out}");
        // Deterministic stdout: same args, same bytes.
        assert_eq!(out, run_ok(&["synth", "1000", "16", "--seed=3"]));
        // Mirror and Leontief variants run through the same plumbing.
        let md = run_ok(&["synth", "500", "8", "--solver=mirror", "--leontief"]);
        assert!(md.contains("solver      mirror"), "{md}");
        assert!(md.contains("kind        leontief"), "{md}");
    }

    #[test]
    fn synth_rejects_bad_arguments() {
        assert!(run_err(&["synth", "0", "16"])
            .message
            .contains("at least 1"));
        assert!(run_err(&["synth", "100", "8", "--solver=jacobi"])
            .message
            .contains("sparse"));
        assert!(run_err(&["synth", "100", "8", "--solver=magic"])
            .message
            .contains("unknown solver"));
        assert!(run_err(&["synth", "100", "8", "--tol=-1"])
            .message
            .contains("--tol"));
    }

    #[test]
    fn solve_accepts_a_solver_flag() {
        let jac = run_ok(&["solve", "bbpc", "8", "equalbudget"]);
        let pr = run_ok(&["solve", "bbpc", "8", "equalbudget", "--solver=propresp"]);
        assert!(pr.contains("EqualBudget"), "{pr}");
        assert!(pr.contains("MUR"), "{pr}");
        // Different engines, same market: both produce full metric blocks
        // (values may differ — price-taking vs price-anticipating).
        assert_eq!(jac.lines().count(), pr.lines().count());
    }

    #[test]
    fn theory_evaluates_bounds() {
        let out = run_ok(&["theory", "1.0", "1.0"]);
        assert!(out.contains("0.7500"));
        assert!(out.contains("0.8284"));
    }

    #[test]
    fn mechanism_parsing() {
        assert!(parse_mechanism("balanced", None).is_ok());
        assert!(parse_mechanism("REBUDGET", Some(40.0)).is_ok());
        assert!(parse_mechanism("magic", None).is_err());
    }

    #[test]
    fn bbpc_requires_8_cores() {
        assert!(run(&["solve".into(), "bbpc".into(), "64".into()]).is_err());
    }

    #[test]
    fn simulate_with_faults_reports_degradation_columns() {
        let out = run_ok(&[
            "simulate",
            "bbpc",
            "8",
            "2",
            "--faults=noise=0.2,drop=0.3",
            "--seed=7",
        ]);
        assert!(out.contains("degraded"));
        assert!(out.contains("fallback"));
        assert!(out.contains("ReBudget-40"));
        // Without faults the extra columns stay hidden.
        let plain = run_ok(&["simulate", "bbpc", "8", "2"]);
        assert!(!plain.contains("degraded"));
    }

    #[test]
    fn bad_fault_spec_is_rejected() {
        let e = run(&[
            "simulate".into(),
            "bbpc".into(),
            "8".into(),
            "--faults=bogus=1".into(),
        ])
        .unwrap_err();
        assert!(e.message.contains("invalid --faults spec"));
    }

    fn run_err(args: &[&str]) -> CliError {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&v).expect_err("command fails")
    }

    #[test]
    fn invalid_values_are_one_line_usage_errors() {
        for bad in [
            vec!["simulate", "bbpc", "8", "--seed=banana"],
            vec!["simulate", "bbpc", "zero", "2"],
            vec!["simulate", "bbpc", "0", "2"],
            vec!["simulate", "bbpc", "8", "0"],
            vec!["simulate", "bbpc", "8", "-3"],
            vec!["simulate", "bbpc", "8", "2", "--checkpoint-every=0"],
            vec!["simulate", "bbpc", "8", "2", "--checkpoint-every=few"],
            vec!["simulate", "bbpc", "8", "2", "--deadline-ms=soon"],
            vec!["simulate", "bbpc", "8", "2", "--solve-iters=0"],
            vec!["simulate", "bbpc", "8", "2", "--retries=many"],
            vec!["sweep", "bbpc", "0"],
            vec!["theory", "one", "1.0"],
        ] {
            let e = run_err(&bad);
            assert_eq!(e.code, EXIT_USAGE, "{bad:?}");
            assert!(!e.message.is_empty(), "{bad:?}");
            assert!(
                !e.message.contains('\n') || e.message.contains("USAGE"),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn unreadable_resume_path_is_a_checkpoint_error() {
        let e = run_err(&[
            "simulate",
            "bbpc",
            "8",
            "2",
            "--mechanism=equalbudget",
            "--resume=/nonexistent/rebudget.ckpt",
        ]);
        assert_eq!(e.code, EXIT_CHECKPOINT);
        assert!(e.message.contains("checkpoint"), "{}", e.message);
        let e = run_err(&["sweep", "bbpc", "8", "--resume=/nonexistent/rebudget.ckpt"]);
        assert_eq!(e.code, EXIT_CHECKPOINT);
    }

    #[test]
    fn checkpoint_flags_require_a_single_mechanism() {
        let e = run_err(&["simulate", "bbpc", "8", "2", "--checkpoint=/tmp/x.ckpt"]);
        assert_eq!(e.code, EXIT_USAGE);
        assert!(e.message.contains("--mechanism"), "{}", e.message);
    }

    #[test]
    fn single_mechanism_simulate_prints_fingerprint() {
        let out = run_ok(&["simulate", "bbpc", "8", "2", "--mechanism=equalbudget"]);
        assert_eq!(out.lines().count(), 3, "header + row + fingerprint: {out}");
        let fp = out
            .lines()
            .last()
            .unwrap()
            .strip_prefix("fingerprint ")
            .expect("fingerprint line");
        assert_eq!(fp.len(), 16);
        assert!(fp.chars().all(|c| c.is_ascii_hexdigit()));
        // All-mechanism mode keeps the old table shape: no fingerprint.
        let all = run_ok(&["simulate", "bbpc", "8", "2"]);
        assert!(!all.contains("fingerprint"));
    }

    #[test]
    fn simulate_checkpoint_resume_round_trip_is_byte_stable() {
        let dir = std::env::temp_dir().join(format!("rebudget-cli-cp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("sim.ckpt");
        let ckpt_flag = format!("--checkpoint={}", ckpt.display());
        let resume_flag = format!("--resume={}", ckpt.display());
        let base = [
            "simulate",
            "bbpc",
            "8",
            "3",
            "--mechanism=rebudget",
            "--seed=7",
        ];

        let reference = run_ok(&base);
        // "Crash" after 2 of 3 quanta: truncated run with checkpointing on.
        let mut partial: Vec<&str> = base.to_vec();
        partial[3] = "2";
        partial.push(&ckpt_flag);
        run_ok(&partial);
        // Resume to the full horizon: stdout must match the reference
        // byte-for-byte, and the resume note must be off-stdout.
        let mut resumed_args: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        resumed_args.push(resume_flag);
        let (resumed, resume_notes) = run_with_notes(&resumed_args).unwrap();
        assert_eq!(resumed, reference);
        assert!(
            resume_notes.iter().any(|n| n.contains("replayed 2 of 3")),
            "{resume_notes:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_checkpoint_resume_round_trip_is_byte_stable() {
        let dir = std::env::temp_dir().join(format!("rebudget-cli-sw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("sweep.ckpt");
        let ckpt_flag = format!("--checkpoint={}", ckpt.display());
        let resume_flag = format!("--resume={}", ckpt.display());

        let reference = run_ok(&["sweep", "bbpc", "8"]);
        let checkpointed = run_ok(&["sweep", "bbpc", "8", &ckpt_flag]);
        assert_eq!(
            checkpointed, reference,
            "checkpointing must not change values"
        );
        // Resuming a complete sweep reuses every point, bit-identically.
        let (resumed, notes) =
            run_with_notes(&["sweep".into(), "bbpc".into(), "8".into(), resume_flag]).unwrap();
        assert_eq!(resumed, reference);
        assert!(
            notes.iter().any(|n| n.contains("6 of 6 points reused")),
            "{notes:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_renders_solver_health_columns() {
        let out = run_ok(&["sweep", "bbpc", "8"]);
        let header = out.lines().next().unwrap();
        for col in ["conv", "rounds", "iters", "retry", "t/o"] {
            assert!(header.contains(col), "missing {col} in {header}");
        }
        assert!(out.contains("yes"), "clean bbpc sweep converges");
    }

    #[test]
    fn deadline_flags_bound_solves_and_report_timeouts() {
        // A 1-iteration budget cannot converge: the run must still finish
        // (best-effort allocations) and report the timeouts.
        let out = run_ok(&[
            "simulate",
            "bbpc",
            "8",
            "2",
            "--mechanism=equalbudget",
            "--solve-iters=1",
        ]);
        assert!(out.contains("timeouts"), "{out}");
        let row = out.lines().nth(1).unwrap();
        let cols: Vec<&str> = row.split_whitespace().collect();
        let timeouts: usize = cols.last().unwrap().parse().unwrap();
        assert_eq!(timeouts, 2, "one timed-out solve per quantum: {row}");
        // With a generous budget nothing times out.
        let ok = run_ok(&[
            "simulate",
            "bbpc",
            "8",
            "2",
            "--mechanism=equalbudget",
            "--solve-iters=500",
            "--retries=2",
        ]);
        let row = ok.lines().nth(1).unwrap();
        let cols: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(cols[cols.len() - 1], "0", "timeouts: {row}");
        assert_eq!(cols[cols.len() - 2], "0", "retries: {row}");
    }

    // Observability tests toggle the process-global telemetry switch;
    // serialise them so resets don't interleave.
    fn observed<R>(f: impl FnOnce() -> R) -> R {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f()
    }

    #[test]
    fn trace_flag_writes_schema_valid_journal_without_touching_stdout() {
        observed(|| {
            let dir = std::env::temp_dir().join(format!("rebudget-cli-tr-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let trace = dir.join("sim.jsonl");
            let base = [
                "simulate",
                "bbpc",
                "8",
                "2",
                "--mechanism=rebudget",
                "--seed=3",
            ];
            let reference = run_ok(&base);
            let trace_flag = format!("--trace={}", trace.display());
            let mut traced_args: Vec<&str> = base.to_vec();
            traced_args.push(&trace_flag);
            let traced = run_ok(&traced_args);
            assert_eq!(traced, reference, "tracing must not touch stdout");
            let text = std::fs::read_to_string(&trace).unwrap();
            let n = rebudget_telemetry::schema::validate_stream(&text).expect("schema-valid");
            assert!(n >= 3, "expected events, got {n}");
            assert!(text.lines().next().unwrap().contains("trace_meta"));
            assert!(text.contains("\"event\":\"quantum\""), "{text}");
            assert!(text.contains("\"event\":\"rebudget_round\""), "{text}");
            assert!(text.contains("\"event\":\"solve_end\""), "{text}");
            let _ = std::fs::remove_dir_all(&dir);
        });
    }

    #[test]
    fn metrics_and_profile_flags_append_sections() {
        observed(|| {
            let out = run_ok(&[
                "simulate",
                "bbpc",
                "8",
                "2",
                "--mechanism=equalbudget",
                "--metrics",
                "--profile",
            ]);
            assert!(out.contains("metrics:"), "{out}");
            assert!(out.contains("counters:"), "{out}");
            assert!(out.contains("solver.solves"), "{out}");
            assert!(out.contains("profile (wall-clock per span):"), "{out}");
            assert!(out.contains("quantum"), "{out}");
            // The table rows stay untouched in front of the sections.
            let plain = run_ok(&["simulate", "bbpc", "8", "2", "--mechanism=equalbudget"]);
            assert!(out.starts_with(plain.trim_end_matches('\n')) || out.starts_with(&plain));
        });
    }

    const SCENARIO_MINIMAL: &str = r#"[scenario]
name = "cli-smoke"
cores = 8
workload = "cpbn"
mechanism = "rebudget"
seed = 5

[[phases]]
name = "steady"
quanta = 3

[[properties]]
kind = "no-nan"
"#;

    fn scenario_dir(tag: &str, body: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rebudget-cli-sc-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("smoke.toml"), body).unwrap();
        dir
    }

    #[test]
    fn scenario_list_check_run_and_audit_round_trip() {
        let dir = scenario_dir("ok", SCENARIO_MINIMAL);
        let dir_s = dir.display().to_string();

        let listed = run_ok(&["scenario", "list", &dir_s]);
        assert!(listed.contains("cli-smoke"), "{listed}");
        assert!(listed.contains("rebudget"), "{listed}");

        let checked = run_ok(&["scenario", "check", &dir_s]);
        assert!(checked.contains("ok cli-smoke"), "{checked}");
        assert!(checked.contains("1 scenario(s) valid"), "{checked}");

        let ledgers = dir.join("ledgers");
        let ledger_flag = format!("--ledger={}", ledgers.display());
        let ran = run_ok(&["scenario", "run", &dir_s, &ledger_flag]);
        assert!(ran.contains("cli-smoke"), "{ran}");
        assert!(ran.contains("1/1"), "{ran}");

        // The written ledger audits cleanly; a tampered copy does not.
        let ledger_path = ledgers.join("cli-smoke.ledger");
        let ledger_s = ledger_path.display().to_string();
        let audited = run_ok(&["scenario", "audit", &ledger_s]);
        assert!(audited.contains("ok cli-smoke"), "{audited}");
        let text = std::fs::read_to_string(&ledger_path).unwrap();
        let tampered = dir.join("tampered.ledger");
        std::fs::write(&tampered, text.replacen("eff=", "eff=f", 1)).unwrap();
        let e = run_err(&["scenario", "audit", &tampered.display().to_string()]);
        assert_eq!(e.code, EXIT_PROPERTY);

        // Ledgers are immutable: a second run into the same directory
        // refuses to overwrite.
        let e = run_err(&["scenario", "run", &dir_s, &ledger_flag]);
        assert!(e.message.contains("cannot write ledger"), "{}", e.message);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenario_violation_exits_with_the_property_code() {
        let body = SCENARIO_MINIMAL.replace(
            "kind = \"no-nan\"\n",
            "kind = \"no-nan\"\n\n[[properties]]\nkind = \"min-efficiency\"\nvalue = 9999.0\n",
        );
        let dir = scenario_dir("viol", &body);
        let e = run_err(&["scenario", "run", &dir.display().to_string()]);
        assert_eq!(e.code, EXIT_PROPERTY, "{}", e.message);
        assert!(e.message.contains("min-efficiency"), "{}", e.message);
        assert!(e.message.contains("violated"), "{}", e.message);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scenario_bad_arguments_are_usage_errors() {
        for bad in [
            vec!["scenario"],
            vec!["scenario", "frobnicate", "x"],
            vec!["scenario", "run"],
            vec!["scenario", "run", "/nonexistent/path.toml"],
            vec!["scenario", "audit"],
        ] {
            let e = run_err(&bad);
            assert_eq!(e.code, EXIT_USAGE, "{bad:?}: {}", e.message);
        }
        // A malformed scenario file is a usage error naming the line.
        let body = SCENARIO_MINIMAL.replace("seed = 5\n", "seed = 5\nbogus = 1\n");
        let dir = scenario_dir("bad", &body);
        let e = run_err(&["scenario", "check", &dir.display().to_string()]);
        assert_eq!(e.code, EXIT_USAGE);
        assert!(e.message.contains("line 7"), "{}", e.message);
        assert!(e.message.contains("unknown key 'bogus'"), "{}", e.message);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn switch_extraction_removes_only_the_switch() {
        let mut a: Vec<String> = vec!["simulate".into(), "--metrics".into(), "bbpc".into()];
        assert!(extract_switch(&mut a, "metrics"));
        assert!(!extract_switch(&mut a, "metrics"));
        assert_eq!(a, vec!["simulate".to_string(), "bbpc".to_string()]);
    }

    #[test]
    fn flag_extraction_handles_both_forms() {
        let mut a: Vec<String> = vec!["simulate".into(), "--seed=9".into(), "bbpc".into()];
        assert_eq!(extract_flag(&mut a, "seed").unwrap().as_deref(), Some("9"));
        assert_eq!(a, vec!["simulate".to_string(), "bbpc".to_string()]);
        let mut b: Vec<String> = vec!["--faults".into(), "noise=0.1".into()];
        assert_eq!(
            extract_flag(&mut b, "faults").unwrap().as_deref(),
            Some("noise=0.1")
        );
        assert!(b.is_empty());
        let mut c: Vec<String> = vec!["--faults".into()];
        assert!(extract_flag(&mut c, "faults").is_err());
    }
}
