//! Process exit codes for the `rebudget` binary.
//!
//! Consolidated here so every subcommand (and every test and CI job
//! asserting on codes) reads from one table:
//!
//! | code | constant          | meaning                                      |
//! |------|-------------------|----------------------------------------------|
//! | 0    | —                 | success                                      |
//! | 1    | —                 | unreserved (not produced by the CLI)         |
//! | 2    | [`EXIT_USAGE`]    | bad arguments or invalid input values        |
//! | 3    | [`EXIT_CHECKPOINT`] | checkpoint unreadable, corrupt, or mismatched |
//! | 4    | [`EXIT_PROPERTY`] | a declared scenario property was violated, or a ledger failed its integrity audit |
//! | 5    | [`EXIT_SERVER`]   | the online market daemon failed (bind, recovery, or tick commit) |
//!
//! Codes 2–4 predate the daemon; [`EXIT_SERVER`] is distinct so chaos
//! harnesses can tell a refused/failed daemon from a usage slip.

/// Exit code for usage and validation errors.
pub const EXIT_USAGE: i32 = 2;

/// Exit code for checkpoint errors (unreadable, corrupt, mismatched).
pub const EXIT_CHECKPOINT: i32 = 3;

/// Exit code for scenario property violations and ledger integrity
/// failures: the run itself completed, but a declared invariant did not
/// hold (or an allocation ledger failed its audit).
pub const EXIT_PROPERTY: i32 = 4;

/// Exit code for online-server failures: the daemon could not bind its
/// socket, recover its durable state, or commit a tick.
pub const EXIT_SERVER: i32 = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_stable() {
        // The numeric values are load-bearing for CI scripts; never
        // renumber, only append.
        assert_eq!(EXIT_USAGE, 2);
        assert_eq!(EXIT_CHECKPOINT, 3);
        assert_eq!(EXIT_PROPERTY, 4);
        assert_eq!(EXIT_SERVER, 5);
    }
}
