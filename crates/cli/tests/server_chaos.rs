//! Chaos harness for `rebudget serve`: the kill-safety acceptance test.
//!
//! Drives a real daemon subprocess over its Unix socket with the seeded
//! [`rebudget_server::WorkloadSpec`] churn, injects every class of
//! client misbehavior (malformed frames, oversized frames, slowloris
//! partial frames, mid-line disconnects), SIGKILLs the daemon at
//! randomized points — including inside the widened append→snapshot
//! commit window (`--commit-delay-ms`) — restarts it, re-drives exactly
//! the ticks the crash lost (the workload is per-tick pure), and proves
//! the final sealed ledger is **byte-identical** to an uninterrupted
//! reference run. The ledger must then pass `scenario audit`.

#![cfg(unix)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use rebudget_server::{Request, WorkloadSpec};

const BIN: &str = env!("CARGO_BIN_EXE_rebudget");

/// Total market quanta in every run (reference and chaos alike).
const TICKS: u64 = 8;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rebudget-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The workload both runs replay: must match the daemon's `--resources`.
fn spec() -> WorkloadSpec {
    WorkloadSpec::small(11, 6)
}

struct Daemon {
    child: Child,
    /// Tick index the daemon reported on its readiness line — the last
    /// durably committed tick, so re-driving starts at `ready_tick + 1`.
    ready_tick: u64,
}

impl Daemon {
    fn spawn(socket: &Path, state_dir: &Path, extra: &[&str]) -> Self {
        let mut child = Command::new(BIN)
            .arg("serve")
            .arg(format!("--socket={}", socket.display()))
            .arg(format!("--state-dir={}", state_dir.display()))
            .args(["--resources=6", "--capacity=8.0", "--seed=11"])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn daemon");
        // The readiness line is printed after the socket is bound, so
        // reading it doubles as the connect barrier:
        //   serving on PATH at tick N (M player(s))
        let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
        let mut line = String::new();
        stderr.read_line(&mut line).expect("readiness line");
        assert!(line.starts_with("serving on "), "unexpected stderr: {line}");
        let ready_tick: u64 = line
            .split(" at tick ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unparseable readiness line: {line}"));
        Daemon { child, ready_tick }
    }

    fn sigkill(mut self) {
        self.child.kill().expect("SIGKILL");
        self.child.wait().expect("reap");
    }

    fn wait_clean(mut self) {
        let status = self.child.wait().expect("wait");
        assert!(status.success(), "daemon exited {status}");
    }
}

struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    fn connect(socket: &Path) -> Self {
        let stream = UnixStream::connect(socket).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let writer = stream.try_clone().expect("clone");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send_raw(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write newline");
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        assert!(!line.is_empty(), "daemon closed the connection");
        line
    }

    fn request(&mut self, req: &Request) -> String {
        self.send_raw(&req.to_line());
        self.read_line()
    }

    /// Sends every admission command for `tick`, then the tick command,
    /// and reads until the tick response (skipping any per-command
    /// rejection lines the tick surfaces).
    fn drive_tick(&mut self, spec: &WorkloadSpec, tick: u64) {
        for cmd in spec.commands_for_tick(tick) {
            let resp = self.request(&cmd);
            assert!(
                resp.contains("\"queued\":true"),
                "tick {tick} admission not queued: {resp}"
            );
        }
        self.send_raw(&Request::Tick.to_line());
        loop {
            let resp = self.read_line();
            if resp.contains("\"reason\":\"rejected\"") {
                continue;
            }
            assert!(
                resp.contains("\"ok\":true") && resp.contains("\"tick\":"),
                "tick {tick} response: {resp}"
            );
            break;
        }
    }
}

/// An uninterrupted run of `TICKS` quanta: the reference ledger bytes.
fn reference_ledger(tag: &str) -> String {
    let dir = temp_dir(tag);
    let socket = dir.join("ref.sock");
    let state = dir.join("state");
    let daemon = Daemon::spawn(&socket, &state, &[]);
    assert_eq!(daemon.ready_tick, 0);
    let mut client = Client::connect(&socket);
    let spec = spec();
    for tick in 1..=TICKS {
        client.drive_tick(&spec, tick);
    }
    let resp = client.request(&Request::Shutdown);
    assert!(resp.contains("\"records\":"), "shutdown: {resp}");
    daemon.wait_clean();
    std::fs::read_to_string(state.join("server.ledger")).expect("reference ledger")
}

/// Malformed, oversized, slowloris, and mid-line-disconnect clients, all
/// on their own connections so the main session stays clean.
fn inject_abuse(socket: &Path) {
    // Malformed line: named error, connection stays open; then drop it
    // mid-session (a disconnect the daemon must absorb).
    let mut bad = Client::connect(socket);
    bad.send_raw("this is not json");
    let resp = bad.read_line();
    assert!(resp.contains("\"reason\":\"malformed\""), "{resp}");
    drop(bad);

    // Oversized frame (default cap 64 KiB): one rejection line, then the
    // daemon closes the connection.
    let mut big = Client::connect(socket);
    big.send_raw(&"x".repeat(70_000));
    let resp = big.read_line();
    assert!(resp.contains("\"reason\":\"oversized\""), "{resp}");
    let mut rest = Vec::new();
    match big.reader.read_to_end(&mut rest) {
        Ok(n) => assert_eq!(n, 0, "data after oversize close"),
        Err(e) => assert!(
            matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::BrokenPipe),
            "{e}"
        ),
    }

    // Mid-line disconnect: half a frame, then vanish.
    let mut half = Client::connect(socket);
    half.writer
        .write_all(b"{\"cmd\":\"arr")
        .expect("partial write");
    drop(half);

    // Slowloris: a partial frame parked past --read-timeout-ms must get
    // the connection dropped without a response.
    let slow = UnixStream::connect(socket).expect("connect slowloris");
    slow.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    (&slow)
        .write_all(b"{\"cmd\":\"tick")
        .expect("partial write");
    let mut buf = [0u8; 64];
    match (&slow).read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("slowloris got {n} bytes instead of EOF"),
        Err(e) => assert!(
            matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::BrokenPipe),
            "slowloris read: {e}"
        ),
    }
}

/// The acceptance test: SIGKILL at randomized points — once inside the
/// widened append→snapshot window, once right at tick submission — then
/// resume, re-drive the lost ticks, and match the reference ledger
/// byte for byte. The sealed ledger must also pass `scenario audit`.
#[test]
fn sigkill_mid_tick_resumes_byte_identical() {
    let reference = reference_ledger("ref");

    let dir = temp_dir("chaos");
    let socket = dir.join("chaos.sock");
    let state = dir.join("state");
    let spec = spec();
    // Widen the window between ledger append and snapshot commit so the
    // first SIGKILL reliably lands where the ledger is one record ahead.
    let extra = &["--commit-delay-ms=200", "--read-timeout-ms=300"];

    // (kill tick, delay before SIGKILL): 120 ms lands mid commit-delay
    // (ledger ahead of snapshot); 0 ms races the solve itself.
    let kills = [(3u64, 120u64), (6, 0)];
    for (kill_tick, delay_ms) in kills {
        let daemon = Daemon::spawn(&socket, &state, extra);
        assert!(
            daemon.ready_tick < kill_tick,
            "daemon resumed at {} past kill point {kill_tick}",
            daemon.ready_tick
        );
        let mut next_tick = daemon.ready_tick + 1;
        inject_abuse(&socket);
        let mut client = Client::connect(&socket);
        while next_tick < kill_tick {
            client.drive_tick(&spec, next_tick);
            next_tick += 1;
        }
        // Submit the doomed tick's commands and the tick itself, then
        // SIGKILL without waiting for the response.
        for cmd in spec.commands_for_tick(kill_tick) {
            let resp = client.request(&cmd);
            assert!(resp.contains("\"queued\":true"), "{resp}");
        }
        client.send_raw(&Request::Tick.to_line());
        std::thread::sleep(Duration::from_millis(delay_ms));
        daemon.sigkill();
    }

    // Final resume: finish the remaining ticks and seal gracefully.
    let daemon = Daemon::spawn(&socket, &state, &[]);
    let mut client = Client::connect(&socket);
    for tick in daemon.ready_tick + 1..=TICKS {
        client.drive_tick(&spec, tick);
    }
    let stats = client.request(&Request::Stats);
    assert!(
        stats.contains(&format!("\"tick\":{TICKS}")),
        "final stats: {stats}"
    );
    let resp = client.request(&Request::Shutdown);
    assert!(resp.contains("\"records\":"), "shutdown: {resp}");
    daemon.wait_clean();

    let chaos = std::fs::read_to_string(state.join("server.ledger")).expect("chaos ledger");
    assert_eq!(
        chaos, reference,
        "chaos ledger diverged from the uninterrupted reference"
    );

    // The sealed ledger passes the hash-chain integrity audit.
    let ledger = state.join("server.ledger");
    let audit = rebudget_cli::run(&[
        "scenario".to_string(),
        "audit".to_string(),
        ledger.display().to_string(),
    ])
    .expect("audit passes");
    assert!(audit.contains("ok"), "audit output: {audit}");
}

/// A sealed state directory refuses to serve again — with the dedicated
/// server exit code, not a usage error.
#[test]
fn sealed_state_dir_refuses_reopen_with_exit_5() {
    let dir = temp_dir("sealed");
    let socket = dir.join("s.sock");
    let state = dir.join("state");
    let daemon = Daemon::spawn(&socket, &state, &[]);
    let mut client = Client::connect(&socket);
    client.drive_tick(&spec(), 1);
    client.request(&Request::Shutdown);
    daemon.wait_clean();

    let output = Command::new(BIN)
        .arg("serve")
        .arg(format!("--socket={}", socket.display()))
        .arg(format!("--state-dir={}", state.display()))
        .args(["--resources=6", "--capacity=8.0", "--seed=11"])
        .output()
        .expect("run");
    assert_eq!(output.status.code(), Some(rebudget_cli::EXIT_SERVER));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("sealed"), "stderr: {stderr}");
}

/// Flag validation fails fast with the usage exit code, before any
/// socket or state directory is touched.
#[test]
fn serve_usage_errors_exit_2() {
    for args in [
        vec!["serve"],
        vec!["serve", "--socket=/tmp/x.sock"],
        vec![
            "serve",
            "--socket=/tmp/x.sock",
            "--tcp=127.0.0.1:0",
            "--state-dir=/tmp/x",
        ],
        vec![
            "serve",
            "--socket=/tmp/x.sock",
            "--state-dir=/tmp/x",
            "--tol=0",
        ],
        vec![
            "serve",
            "--socket=/tmp/x.sock",
            "--state-dir=/tmp/x",
            "--bogus=1",
        ],
    ] {
        let output = Command::new(BIN).args(&args).output().expect("run");
        assert_eq!(
            output.status.code(),
            Some(rebudget_cli::EXIT_USAGE),
            "args {args:?}: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
}
