//! Declarative scenario engine for the ReBudget reproduction.
//!
//! Scenario coverage used to mean hand-coded binaries plus ad-hoc
//! `--faults` specs. This crate replaces that with **data**: a
//! `scenarios/*.toml` file declares phases, event triggers (time,
//! metric thresholds, arrivals/departures, composable `all`/`any`),
//! effects (fault onsets, budget shocks, utility-shape drift, player
//! churn), and **properties to verify** (the paper's Theorem-1/2
//! fairness floors, convergence, no-NaN, ledger-replay bit-identity).
//!
//! The engine executes scenarios against the *real* simulation loop via
//! [`rebudget_sim::run_simulation_hooked`], appends every quantum to an
//! immutable, hash-chained allocation [`ledger`], and checks the declared
//! properties post-run. A violated property exits the CLI with
//! `EXIT_PROPERTY` and a structured report naming the property.
//!
//! Everything here is deterministic: the same scenario file produces a
//! byte-identical ledger on every run, serial or parallel, traced or
//! untraced — which is what makes the ledger an audit artifact rather
//! than a log.

pub mod effect;
pub mod engine;
pub mod ledger;
pub mod model;
pub mod properties;
pub mod toml;
pub mod trigger;

pub use effect::Effect;
pub use engine::{run_scenario, ScenarioOutcome};
pub use ledger::{create_new_ledger_file, valid_prefix, Ledger, LedgerMeta, LedgerPrefix};
pub use model::{Event, Phase, Scenario};
pub use properties::{Property, PropertyReport};
pub use trigger::{Metric, Trigger};

use std::fmt;

/// Errors from scenario parsing, execution, or ledger verification.
#[derive(Debug)]
#[non_exhaustive]
pub enum ScenarioError {
    /// A malformed scenario file — 1-based line plus reason, mirroring
    /// the checkpoint crate's `CheckpointError::Format`.
    Format {
        /// 1-based line number of the offence.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A malformed or tampered ledger — 1-based line plus reason.
    Ledger {
        /// 1-based line number of the offence.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A ledger write targeted a path that already exists. Ledgers are
    /// immutable audit artifacts: an existing file is never overwritten,
    /// and the collision is named rather than surfaced as a raw
    /// [`ScenarioError::Io`].
    LedgerExists {
        /// The path that already holds a ledger (or any other file).
        path: std::path::PathBuf,
    },
    /// Filesystem trouble reading a scenario or writing a ledger.
    Io(std::io::Error),
    /// The simulation itself failed.
    Sim(rebudget_sim::simulation::SimError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Format { line, reason } => {
                write!(f, "scenario format error at line {line}: {reason}")
            }
            ScenarioError::Ledger { line, reason } => {
                write!(f, "ledger error at line {line}: {reason}")
            }
            ScenarioError::LedgerExists { path } => write!(
                f,
                "ledger '{}' already exists (ledgers are immutable; \
                 pick a new path or move the old ledger aside)",
                path.display()
            ),
            ScenarioError::Io(e) => write!(f, "io error: {e}"),
            ScenarioError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<std::io::Error> for ScenarioError {
    fn from(e: std::io::Error) -> Self {
        ScenarioError::Io(e)
    }
}

impl From<rebudget_sim::simulation::SimError> for ScenarioError {
    fn from(e: rebudget_sim::simulation::SimError) -> Self {
        ScenarioError::Sim(e)
    }
}
