//! Effects: what a fired event does to the run.
//!
//! Effects mutate the engine's persistent control state — the state is
//! then written into each quantum's
//! [`rebudget_sim::QuantumControls`] until another effect changes it.
//! They are declared as inline tables with one primary key:
//!
//! ```toml
//! effects = [
//!     { faults = "noise=0.3,drop=0.2,seed=11" }, # install a fault plan
//!     { clear-faults = true },                   # back to the base plan off
//!     { fault-intensity = 0.5 },                 # scale the active plan
//!     { budget-scale = 2.0, player = 3 },        # shock one player
//!     { budget-scales = [1.0, 2.0, 1.0, 0.5] },  # shock everyone
//!     { utility-scale = 1.5, player = 2 },       # demand drift
//!     { depart = 3 }, { arrive = 3 },            # churn
//!     { reset = true },                          # neutral controls
//! ]
//! ```

use rebudget_market::FaultPlan;

use crate::toml::{Spanned, TableReader};
use crate::ScenarioError;

/// One declared effect.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Install (replace) the fault plan.
    Faults(FaultPlan),
    /// Remove all faults (including the scenario's base plan).
    ClearFaults,
    /// Scale the currently-active fault plan's intensities.
    FaultIntensity(f64),
    /// Multiply one player's (or, with `player` omitted, every player's)
    /// budget scale.
    BudgetScale {
        /// Target player, or all players when `None`.
        player: Option<usize>,
        /// Multiplier folded into the current scale (> 0).
        factor: f64,
    },
    /// Replace the whole budget-scale vector.
    BudgetScales(Vec<f64>),
    /// Multiply one player's (or every player's) utility scale.
    UtilityScale {
        /// Target player, or all players when `None`.
        player: Option<usize>,
        /// Multiplier folded into the current scale (> 0).
        factor: f64,
    },
    /// Remove a player from the market (zero allocation rows).
    Depart(usize),
    /// Return a departed player to the market.
    Arrive(usize),
    /// Reset every control to neutral: base faults, unit scales, all
    /// players active.
    Reset,
}

impl Effect {
    /// Parses an effect from its inline-table form.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Format`] naming the offending line.
    pub fn from_toml(spanned: &Spanned) -> Result<Self, ScenarioError> {
        let table = spanned.as_table()?;
        let mut reader = TableReader::new(table, "effect");
        let line = reader.line();
        let effect = if let Some(v) = reader.take("faults") {
            let plan = FaultPlan::parse(v.as_str()?).map_err(|e| ScenarioError::Format {
                line: v.line,
                reason: format!("bad fault spec: {e}"),
            })?;
            Effect::Faults(plan)
        } else if let Some(v) = reader.take("clear-faults") {
            if !v.as_bool()? {
                return Err(ScenarioError::Format {
                    line: v.line,
                    reason: "'clear-faults' must be true (omit the effect otherwise)".into(),
                });
            }
            Effect::ClearFaults
        } else if let Some(v) = reader.take("fault-intensity") {
            let x = v.as_f64()?;
            if !(x.is_finite() && x >= 0.0) {
                return Err(ScenarioError::Format {
                    line: v.line,
                    reason: "fault-intensity must be finite and non-negative".into(),
                });
            }
            Effect::FaultIntensity(x)
        } else if let Some(v) = reader.take("budget-scale") {
            Effect::BudgetScale {
                factor: positive(v)?,
                player: reader.take("player").map(Spanned::as_usize).transpose()?,
            }
        } else if let Some(v) = reader.take("budget-scales") {
            let scales = v
                .as_array()?
                .iter()
                .map(positive)
                .collect::<Result<Vec<f64>, _>>()?;
            Effect::BudgetScales(scales)
        } else if let Some(v) = reader.take("utility-scale") {
            Effect::UtilityScale {
                factor: positive(v)?,
                player: reader.take("player").map(Spanned::as_usize).transpose()?,
            }
        } else if let Some(v) = reader.take("depart") {
            Effect::Depart(v.as_usize()?)
        } else if let Some(v) = reader.take("arrive") {
            Effect::Arrive(v.as_usize()?)
        } else if let Some(v) = reader.take("reset") {
            if !v.as_bool()? {
                return Err(ScenarioError::Format {
                    line: v.line,
                    reason: "'reset' must be true (omit the effect otherwise)".into(),
                });
            }
            Effect::Reset
        } else {
            return Err(ScenarioError::Format {
                line,
                reason: "malformed effect: expected one of faults, clear-faults, \
                         fault-intensity, budget-scale, budget-scales, utility-scale, \
                         depart, arrive, reset"
                    .into(),
            });
        };
        reader.finish()?;
        Ok(effect)
    }

    /// The highest player index this effect references, for validation
    /// against the scenario's core count.
    #[must_use]
    pub fn max_player(&self) -> Option<usize> {
        match self {
            Effect::BudgetScale {
                player: Some(i), ..
            }
            | Effect::UtilityScale {
                player: Some(i), ..
            }
            | Effect::Depart(i)
            | Effect::Arrive(i) => Some(*i),
            Effect::BudgetScales(scales) => scales.len().checked_sub(1),
            _ => None,
        }
    }
}

fn positive(v: &Spanned) -> Result<f64, ScenarioError> {
    let x = v.as_f64()?;
    if x.is_finite() && x > 0.0 {
        Ok(x)
    } else {
        Err(ScenarioError::Format {
            line: v.line,
            reason: format!("scale factors must be finite and positive (got {x})"),
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::toml::parse;

    fn effect(doc: &str) -> Result<Effect, ScenarioError> {
        let root = parse(&format!("e = {doc}\n"))?;
        Effect::from_toml(root.get("e").unwrap())
    }

    #[test]
    fn parses_every_effect_form() {
        assert!(matches!(
            effect("{ faults = \"noise=0.2,seed=3\" }").unwrap(),
            Effect::Faults(p) if (p.noise_sigma - 0.2).abs() < 1e-12 && p.seed == 3
        ));
        assert_eq!(
            effect("{ clear-faults = true }").unwrap(),
            Effect::ClearFaults
        );
        assert_eq!(
            effect("{ fault-intensity = 0.5 }").unwrap(),
            Effect::FaultIntensity(0.5)
        );
        assert_eq!(
            effect("{ budget-scale = 2.0, player = 3 }").unwrap(),
            Effect::BudgetScale {
                player: Some(3),
                factor: 2.0
            }
        );
        assert_eq!(
            effect("{ budget-scales = [1.0, 2.0] }").unwrap(),
            Effect::BudgetScales(vec![1.0, 2.0])
        );
        assert_eq!(
            effect("{ utility-scale = 1.5 }").unwrap(),
            Effect::UtilityScale {
                player: None,
                factor: 1.5
            }
        );
        assert_eq!(effect("{ depart = 3 }").unwrap(), Effect::Depart(3));
        assert_eq!(effect("{ arrive = 3 }").unwrap(), Effect::Arrive(3));
        assert_eq!(effect("{ reset = true }").unwrap(), Effect::Reset);
    }

    #[test]
    fn rejects_bad_effects() {
        assert!(effect("{ faults = \"bogus=1\" }").is_err());
        assert!(effect("{ budget-scale = 0.0 }").is_err());
        assert!(effect("{ budget-scale = -1.0 }").is_err());
        assert!(effect("{ utility-scale = 2.0, bogus = 1 }").is_err());
        assert!(effect("{ reset = false }").is_err());
        assert!(effect("{ }").is_err());
        assert!(
            effect("{ depart = 1, arrive = 2 }").is_err(),
            "one primary key"
        );
    }

    #[test]
    fn max_player_covers_reach() {
        assert_eq!(effect("{ depart = 5 }").unwrap().max_player(), Some(5));
        assert_eq!(
            effect("{ budget-scales = [1.0, 1.0, 2.0] }")
                .unwrap()
                .max_player(),
            Some(2)
        );
        assert_eq!(effect("{ reset = true }").unwrap().max_player(), None);
    }
}
