//! Scenario execution: a [`QuantumHook`] that drives triggers/effects
//! against the real simulation loop, writes the allocation ledger, and
//! verifies the declared properties post-run.

use std::sync::atomic::{AtomicU64, Ordering};

use rebudget_core::mechanisms::{
    Balanced, EqualBudget, EqualShare, MaxEfficiency, Mechanism, ReBudget,
};
use rebudget_market::{metrics, AllocationMatrix, Market};
use rebudget_sim::simulation::ExecutionModel;
use rebudget_sim::{
    run_simulation_hooked, DramConfig, QuantumControls, QuantumHook, QuantumObservation,
    RecoveryOptions, SimOptions, SimResult, SystemConfig,
};
use rebudget_workloads::{generate_bundle, paper_bbpc_8core, Bundle, Category};

use crate::effect::Effect;
use crate::ledger::{self, Ledger, LedgerMeta, LedgerRecord};
use crate::model::Scenario;
use crate::properties::{FinalAudit, Property, PropertyContext, PropertyReport};
use crate::trigger::{MetricSnapshot, TriggerState};
use crate::ScenarioError;

/// A completed scenario run: the simulation result, the sealed ledger,
/// the events that fired, and every property verdict.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// The underlying simulation result.
    pub result: SimResult,
    /// The sealed allocation ledger.
    pub ledger: String,
    /// `(quantum, event name)` for every firing, in order.
    pub fired: Vec<(usize, String)>,
    /// One verdict per declared property, in declaration order.
    pub reports: Vec<PropertyReport>,
}

impl ScenarioOutcome {
    /// `true` when every declared property held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.reports.iter().all(|r| r.passed)
    }

    /// The failed property reports.
    #[must_use]
    pub fn violations(&self) -> Vec<&PropertyReport> {
        self.reports.iter().filter(|r| !r.passed).collect()
    }
}

/// Runs a scenario end to end: simulate with the scenario hook, seal the
/// ledger, then verify every declared property (including the
/// engine-level ledger-replay and resume-identity checks, which re-run
/// the scenario).
///
/// # Errors
///
/// [`ScenarioError::Sim`] if the simulation itself fails; property
/// *violations* are not errors — they come back as failed
/// [`PropertyReport`]s in the outcome.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioOutcome, ScenarioError> {
    let (result, out) = run_once(scenario, &RecoveryOptions::default(), None)?;

    let ledger_replay: Option<Result<(), String>> = scenario
        .properties
        .contains(&Property::LedgerReplay)
        .then(|| {
            let (_, second) = run_once(scenario, &RecoveryOptions::default(), None)
                .map_err(|e| format!("replay run failed: {e}"))?;
            if second.ledger.text() == out.ledger.text() {
                Ok(())
            } else {
                Err(first_divergence(out.ledger.text(), second.ledger.text()))
            }
        });

    let resume: Option<Result<(), String>> = scenario
        .properties
        .contains(&Property::ResumeIdentity)
        .then(|| resume_check(scenario, &result));

    let ctx = PropertyContext {
        result: &result,
        audit: out.audit.as_ref(),
        ledger_replay: ledger_replay.as_ref(),
        resume: resume.as_ref(),
    };
    let reports = scenario.properties.iter().map(|p| p.check(&ctx)).collect();

    Ok(ScenarioOutcome {
        name: scenario.name.clone(),
        result,
        ledger: out.ledger.text().to_string(),
        fired: out.fired,
        reports,
    })
}

/// What the hook accumulated over one run.
struct HookOutput {
    ledger: Ledger,
    fired: Vec<(usize, String)>,
    audit: Option<FinalAudit>,
}

/// One simulation pass of the scenario. `quanta_override` truncates the
/// run (used by the resume-identity check to produce a mid-flight
/// snapshot).
fn run_once(
    scenario: &Scenario,
    recovery: &RecoveryOptions,
    quanta_override: Option<usize>,
) -> Result<(SimResult, HookOutput), ScenarioError> {
    let (sys, dram) = system_for(scenario.cores);
    let bundle = bundle_for(scenario)?;
    let mechanism = mechanism_for(scenario);
    let opts = SimOptions {
        quanta: quanta_override.unwrap_or_else(|| scenario.total_quanta()),
        accesses_per_quantum: scenario.accesses_per_quantum,
        budget: scenario.budget,
        use_monitors: true,
        seed: scenario.seed,
        execution: ExecutionModel::Analytic,
        // Faults flow through the hook's controls, not the options: the
        // hook installs the base plan at quantum 0 and swaps it on events.
        faults: None,
        max_consecutive_failures: 3,
    };
    let mut hook = ScenarioHook::new(scenario, &opts);
    let result = run_simulation_hooked(
        &sys,
        &dram,
        &bundle,
        mechanism.as_ref(),
        &opts,
        recovery,
        &mut hook,
    )?;
    hook.ledger.seal();
    Ok((
        result,
        HookOutput {
            ledger: hook.ledger,
            fired: hook.fired,
            audit: hook.audit,
        },
    ))
}

fn system_for(cores: usize) -> (SystemConfig, DramConfig) {
    let sys = match cores {
        8 => SystemConfig::paper_8core(),
        64 => SystemConfig::paper_64core(),
        n => SystemConfig::scaled(n),
    };
    (sys, DramConfig::ddr3_1600())
}

fn bundle_for(scenario: &Scenario) -> Result<Bundle, ScenarioError> {
    if scenario.workload == "bbpc" {
        return Ok(paper_bbpc_8core());
    }
    let cat = Category::from_name(&scenario.workload).expect("validated workload");
    generate_bundle(cat, scenario.cores, 0, scenario.seed).map_err(|e| ScenarioError::Format {
        line: 1,
        reason: format!("workload generation failed: {e}"),
    })
}

fn mechanism_for(scenario: &Scenario) -> Box<dyn Mechanism> {
    match scenario.mechanism.as_str() {
        "equalshare" => Box::new(EqualShare),
        "equalbudget" => Box::new(EqualBudget::new(scenario.budget)),
        "balanced" => Box::new(Balanced::new(scenario.budget)),
        "maxefficiency" => Box::new(MaxEfficiency::default()),
        _ => Box::new(ReBudget::with_step(
            scenario.budget,
            scenario.step.unwrap_or(20.0),
        )),
    }
}

/// The scenario engine's [`QuantumHook`]: evaluates triggers, applies
/// effects to persistent control state, and appends every quantum to the
/// ledger.
struct ScenarioHook<'a> {
    scenario: &'a Scenario,
    /// Which `once` events have already fired.
    consumed: Vec<bool>,
    /// Current fault plan (starts as the scenario's base plan).
    faults: Option<rebudget_market::FaultPlan>,
    budget_scale: Vec<f64>,
    utility_scale: Vec<f64>,
    active: Vec<bool>,
    /// Previous quantum's metrics for threshold triggers.
    prev: Option<MetricSnapshot>,
    /// MUR reported by the most recent live solve.
    last_mur: Option<f64>,
    /// Events fired for the quantum being built (drained into its ledger
    /// record).
    pending: Vec<String>,
    fired: Vec<(usize, String)>,
    ledger: Ledger,
    want_oracle: bool,
    audit: Option<FinalAudit>,
}

impl<'a> ScenarioHook<'a> {
    fn new(scenario: &'a Scenario, opts: &SimOptions) -> Self {
        let n = scenario.cores;
        let faults_spec = scenario
            .base_faults
            .as_ref()
            .map(ToString::to_string)
            .unwrap_or_default();
        Self {
            scenario,
            consumed: vec![false; scenario.events.len()],
            faults: scenario.base_faults.clone(),
            budget_scale: vec![1.0; n],
            utility_scale: vec![1.0; n],
            active: vec![true; n],
            prev: None,
            last_mur: None,
            pending: Vec::new(),
            fired: Vec::new(),
            ledger: Ledger::new(&LedgerMeta {
                scenario: scenario.name.clone(),
                seed: scenario.seed,
                mechanism: scenario.mechanism.clone(),
                workload: scenario.workload.clone(),
                cores: n,
                resources: 2,
                quanta: opts.quanta,
                budget: scenario.budget,
                faults: faults_spec,
            }),
            want_oracle: scenario
                .properties
                .iter()
                .any(|p| matches!(p, Property::Theorem1Floor { .. })),
            audit: None,
        }
    }

    fn apply(&mut self, effect: &Effect) {
        match effect {
            Effect::Faults(plan) => self.faults = Some(plan.clone()),
            Effect::ClearFaults => self.faults = None,
            Effect::FaultIntensity(x) => {
                self.faults = self.faults.as_ref().map(|p| p.at_intensity(*x));
            }
            Effect::BudgetScale { player, factor } => {
                scale(&mut self.budget_scale, *player, *factor);
            }
            Effect::BudgetScales(scales) => self.budget_scale.clone_from(scales),
            Effect::UtilityScale { player, factor } => {
                scale(&mut self.utility_scale, *player, *factor);
            }
            Effect::Depart(i) => self.active[*i] = false,
            Effect::Arrive(i) => self.active[*i] = true,
            Effect::Reset => {
                self.faults = self.scenario.base_faults.clone();
                self.budget_scale.fill(1.0);
                self.utility_scale.fill(1.0);
                self.active.fill(true);
            }
        }
    }
}

fn scale(scales: &mut [f64], player: Option<usize>, factor: f64) {
    match player {
        Some(i) => scales[i] *= factor,
        None => {
            for s in scales.iter_mut() {
                *s *= factor;
            }
        }
    }
}

impl QuantumHook for ScenarioHook<'_> {
    fn control(&mut self, quantum: usize, controls: &mut QuantumControls) {
        let (phase, phase_start) = self.scenario.phase_at(quantum);
        let state = TriggerState {
            quantum,
            phase: &phase.name,
            phase_start,
            prev: self.prev,
        };
        for i in 0..self.scenario.events.len() {
            if self.consumed[i] {
                continue;
            }
            if self.scenario.events[i].trigger.evaluate(&state) {
                if self.scenario.events[i].once {
                    self.consumed[i] = true;
                }
                let name = self.scenario.events[i].name.clone();
                let effects = self.scenario.events[i].effects.clone();
                for effect in &effects {
                    self.apply(effect);
                }
                self.pending.push(name.clone());
                self.fired.push((quantum, name));
            }
        }
        controls.faults = self.faults.clone();
        controls.budget_scale.clone_from(&self.budget_scale);
        controls.utility_scale.clone_from(&self.utility_scale);
        controls.active.clone_from(&self.active);
    }

    fn observe(&mut self, obs: &QuantumObservation) {
        self.prev = Some(MetricSnapshot {
            efficiency: obs.efficiency,
            envy_freeness: obs.envy_freeness,
            residual: obs.residual,
            degraded_quanta: obs.cumulative_degraded,
            fallback_quanta: obs.cumulative_fallback,
        });
        if obs.mur.is_some() {
            self.last_mur = obs.mur;
        }
        let (phase, _) = self.scenario.phase_at(obs.quantum);
        let events = std::mem::take(&mut self.pending);
        self.ledger.append(&LedgerRecord {
            quantum: obs.quantum,
            phase: &phase.name,
            events: &events,
            active: &self.active,
            budgets: &obs.budgets,
            allocation: &obs.allocation,
            efficiency: obs.efficiency,
            envy_freeness: obs.envy_freeness,
            degraded: obs.degraded,
            fallback: obs.fallback,
            converged: obs.converged,
        });
    }

    fn observe_final(&mut self, market: &Market, allocation: &AllocationMatrix) {
        let budgets: Vec<f64> = market.players().iter().map(|p| p.budget()).collect();
        let oracle_efficiency = if self.want_oracle {
            MaxEfficiency::default()
                .allocate(market)
                .ok()
                .map(|out| metrics::efficiency(market, &out.allocation))
        } else {
            None
        };
        self.audit = Some(FinalAudit {
            market_efficiency: metrics::efficiency(market, allocation),
            oracle_efficiency,
            envy_freeness: metrics::envy_freeness(market, allocation),
            mur: self.last_mur,
            mbr: metrics::mbr(&budgets),
        });
    }
}

/// Names the first line where two ledgers disagree.
fn first_divergence(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("ledgers diverge at line {}: '{la}' vs '{lb}'", i + 1);
        }
    }
    format!(
        "ledgers diverge in length: {} vs {} lines",
        a.lines().count(),
        b.lines().count()
    )
}

/// Monotonic tag so concurrent resume checks never share a snapshot path.
static RESUME_TAG: AtomicU64 = AtomicU64::new(0);

/// Runs the scenario to its midpoint with per-quantum snapshots, resumes
/// the full run from the snapshot, and demands the resumed result match
/// `reference` bit for bit.
fn resume_check(scenario: &Scenario, reference: &SimResult) -> Result<(), String> {
    let tag = RESUME_TAG.fetch_add(1, Ordering::Relaxed);
    let name: String = scenario
        .name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let ckpt = std::env::temp_dir().join(format!(
        "rebudget-scenario-{name}-{}-{tag}.ckpt",
        std::process::id()
    ));
    let prev = ckpt.with_extension("ckpt.prev");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&prev);

    let half = (scenario.total_quanta() / 2).max(1);
    let snapshot = RecoveryOptions {
        checkpoint: Some(ckpt.clone()),
        checkpoint_every: 1,
        resume: None,
    };
    let truncated =
        run_once(scenario, &snapshot, Some(half)).map_err(|e| format!("snapshot run failed: {e}"));
    let resumed = truncated.and_then(|_| {
        let resume = RecoveryOptions {
            checkpoint: None,
            checkpoint_every: 0,
            resume: Some(ckpt.clone()),
        };
        run_once(scenario, &resume, None).map_err(|e| format!("resumed run failed: {e}"))
    });
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&prev);
    let (resumed, _) = resumed?;

    if resumed.replayed_quanta != half {
        return Err(format!(
            "resume replayed {} quanta, expected {half}",
            resumed.replayed_quanta
        ));
    }
    let bits = |r: &SimResult| {
        let mut v = vec![r.efficiency.to_bits(), r.envy_freeness.to_bits()];
        v.extend(r.utilities.iter().map(|u| u.to_bits()));
        v.extend(r.efficiency_history.iter().map(|e| e.to_bits()));
        v
    };
    if bits(&resumed) == bits(reference) {
        Ok(())
    } else {
        Err("resumed run's metrics differ from the uninterrupted run".into())
    }
}

/// Verifies a ledger file on disk (header, chains, seal).
///
/// # Errors
///
/// [`ScenarioError::Io`] if unreadable, [`ScenarioError::Ledger`] with
/// the offending line if invalid.
pub fn verify_ledger_file(path: &std::path::Path) -> Result<ledger::LedgerSummary, ScenarioError> {
    let text = std::fs::read_to_string(path)?;
    ledger::verify(&text)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn quiet(extra: &str) -> Scenario {
        Scenario::parse(&format!(
            "[scenario]
name = \"engine-test\"
cores = 8
workload = \"cpbn\"
mechanism = \"rebudget\"
seed = 11

[[phases]]
name = \"steady\"
quanta = 4
{extra}"
        ))
        .unwrap()
    }

    #[test]
    fn neutral_scenario_matches_the_plain_simulation() {
        let s = quiet("");
        let outcome = run_scenario(&s).unwrap();
        let (sys, dram) = system_for(8);
        let bundle = bundle_for(&s).unwrap();
        let mechanism = mechanism_for(&s);
        let opts = SimOptions {
            quanta: 4,
            seed: 11,
            ..SimOptions::default()
        };
        let plain =
            rebudget_sim::run_simulation(&sys, &dram, &bundle, mechanism.as_ref(), &opts).unwrap();
        assert_eq!(
            outcome.result.efficiency.to_bits(),
            plain.efficiency.to_bits(),
            "a no-event scenario is the un-hooked pipeline bit for bit"
        );
        assert_eq!(
            outcome.result.envy_freeness.to_bits(),
            plain.envy_freeness.to_bits()
        );
        assert!(outcome.fired.is_empty());
        ledger::verify(&outcome.ledger).unwrap();
    }

    #[test]
    fn events_fire_and_land_in_the_ledger() {
        let s = quiet(
            "
[[events]]
name = \"shock\"
trigger = { at = 2 }
effects = [{ budget-scale = 3.0, player = 0 }]
",
        );
        let outcome = run_scenario(&s).unwrap();
        assert_eq!(outcome.fired, vec![(2, "shock".to_string())]);
        assert!(outcome.ledger.contains("events=shock"));
        // The shocked player's budget triples from quantum 2 on.
        let summary = ledger::verify(&outcome.ledger).unwrap();
        assert_eq!(summary.records, 4);
    }

    #[test]
    fn properties_are_verified_and_reported() {
        let s = quiet(
            "
[[properties]]
kind = \"no-nan\"

[[properties]]
kind = \"min-efficiency\"
value = 9999.0
",
        );
        let outcome = run_scenario(&s).unwrap();
        assert_eq!(outcome.reports.len(), 2);
        assert!(outcome.reports[0].passed, "{}", outcome.reports[0].detail);
        assert!(!outcome.reports[1].passed);
        assert!(!outcome.passed());
        assert_eq!(outcome.violations().len(), 1);
        assert_eq!(outcome.violations()[0].property, "min-efficiency");
    }

    #[test]
    fn departures_zero_rows_and_scale_budgets() {
        let s = quiet(
            "
[[events]]
name = \"churn\"
trigger = { at = 1 }
effects = [{ depart = 3 }]
",
        );
        let outcome = run_scenario(&s).unwrap();
        // After quantum 1, player 3's allocation rows are zero in the
        // ledger (8 players × 2 resources, row-major).
        let zero16 = f64_hex_zeros();
        let mut saw_departed = false;
        for line in outcome.ledger.lines() {
            if let Some(rest) = line.strip_prefix("alloc=") {
                let cells: Vec<&str> = rest.split(' ').collect();
                assert_eq!(cells.len(), 16);
                if cells[6] == zero16 && cells[7] == zero16 {
                    saw_departed = true;
                }
            }
        }
        assert!(saw_departed, "departed player must have zero rows");
        assert!(outcome.ledger.contains("active=11101111"));
    }

    fn f64_hex_zeros() -> String {
        format!("{:016x}", 0.0_f64.to_bits())
    }
}
