//! The append-only, hash-chained allocation ledger.
//!
//! Every scenario run produces a ledger: one record per quantum holding
//! the enforced allocation, the effective budgets, the fired events, and
//! the health flags, followed by a seal. The format reuses the checkpoint
//! crate's conventions — `[section]` / `key=value` lines, f64 values as
//! 16-hex-digit IEEE-754 bit patterns (bit-exact round trips), FNV-1a
//! checksums — plus a **chain**: each record ends with the FNV-1a hash of
//! every byte of the ledger before it, so truncation or in-place edits
//! are detected at the first tampered record, not just at the seal.
//!
//! Because the whole pipeline is deterministic, re-running a scenario
//! reproduces its ledger byte for byte — the `ledger-replay` property —
//! which makes the ledger an audit artifact: any holder can re-derive it
//! from the scenario file and diff.

use std::path::Path;

use rebudget_sim::checkpoint::fnv1a;

use crate::ScenarioError;

const HEADER: &str = "rebudget-ledger v1";

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn hex_list(values: &[f64]) -> String {
    values
        .iter()
        .map(|&v| f64_hex(v))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Metadata stamped into the ledger header.
#[derive(Debug, Clone)]
pub struct LedgerMeta {
    /// Scenario name.
    pub scenario: String,
    /// Simulation seed.
    pub seed: u64,
    /// Mechanism name (as declared in the scenario).
    pub mechanism: String,
    /// Workload name.
    pub workload: String,
    /// Core count.
    pub cores: usize,
    /// Resource count.
    pub resources: usize,
    /// Total quanta the scenario runs.
    pub quanta: usize,
    /// Per-player budget.
    pub budget: f64,
    /// Base fault spec in `--faults` grammar (empty when none).
    pub faults: String,
}

/// One quantum's ledger entry.
#[derive(Debug, Clone)]
pub struct LedgerRecord<'a> {
    /// Quantum index.
    pub quantum: usize,
    /// Phase the quantum ran in.
    pub phase: &'a str,
    /// Events that fired this quantum, in declaration order.
    pub events: &'a [String],
    /// Player presence this quantum.
    pub active: &'a [bool],
    /// Effective budgets of the active players.
    pub budgets: &'a [f64],
    /// Row-major full allocation (zero rows for inactive players).
    pub allocation: &'a [f64],
    /// Instantaneous weighted speedup.
    pub efficiency: f64,
    /// Envy-freeness of the quantum's allocation.
    pub envy_freeness: f64,
    /// Whether the solve degraded.
    pub degraded: bool,
    /// Whether the quantum fell back to EqualShare.
    pub fallback: bool,
    /// Whether the solve converged.
    pub converged: bool,
}

/// An in-progress or sealed ledger.
#[derive(Debug, Clone)]
pub struct Ledger {
    text: String,
    records: usize,
    sealed: bool,
}

impl Ledger {
    /// Starts a ledger with its header and meta section.
    #[must_use]
    pub fn new(meta: &LedgerMeta) -> Self {
        let mut text = String::new();
        text.push_str(HEADER);
        text.push('\n');
        text.push_str("[meta]\n");
        text.push_str(&format!("scenario={}\n", meta.scenario));
        text.push_str(&format!("seed={}\n", meta.seed));
        text.push_str(&format!("mechanism={}\n", meta.mechanism));
        text.push_str(&format!("workload={}\n", meta.workload));
        text.push_str(&format!("cores={}\n", meta.cores));
        text.push_str(&format!("resources={}\n", meta.resources));
        text.push_str(&format!("quanta={}\n", meta.quanta));
        text.push_str(&format!("budget={}\n", f64_hex(meta.budget)));
        if !meta.faults.is_empty() {
            text.push_str(&format!("faults={}\n", meta.faults));
        }
        Self {
            text,
            records: 0,
            sealed: false,
        }
    }

    /// Appends one quantum record, closing it with the chain hash of all
    /// preceding bytes.
    ///
    /// # Panics
    ///
    /// Panics if the ledger is already sealed — records are append-only
    /// and the seal is final.
    pub fn append(&mut self, record: &LedgerRecord) {
        let mut fields: Vec<(&str, String)> = Vec::with_capacity(10);
        fields.push(("phase", record.phase.to_string()));
        if !record.events.is_empty() {
            fields.push(("events", record.events.join(";")));
        }
        let mask: String = record
            .active
            .iter()
            .map(|&a| if a { '1' } else { '0' })
            .collect();
        fields.push(("active", mask));
        fields.push(("budgets", hex_list(record.budgets)));
        fields.push(("alloc", hex_list(record.allocation)));
        fields.push(("eff", f64_hex(record.efficiency)));
        fields.push(("envy", f64_hex(record.envy_freeness)));
        fields.push(("degraded", u8::from(record.degraded).to_string()));
        fields.push(("fallback", u8::from(record.fallback).to_string()));
        fields.push(("converged", u8::from(record.converged).to_string()));
        self.append_section(record.quantum, &fields);
    }

    /// Appends one `[quantum N]` record with caller-supplied `key=value`
    /// fields, closing it with the chain hash of all preceding bytes.
    ///
    /// This is the raw record surface behind [`Ledger::append`]: other
    /// producers (the online server's tick records) write their own field
    /// sets while staying inside the chained, auditable format that
    /// [`verify`] checks.
    ///
    /// # Panics
    ///
    /// Panics if the ledger is sealed, if a key is empty, shadows the
    /// reserved `chain` key, or contains `=`/newlines, or if a value
    /// contains newlines — all programming errors that would corrupt the
    /// line-oriented format.
    pub fn append_section(&mut self, quantum: usize, fields: &[(&str, String)]) {
        assert!(!self.sealed, "cannot append to a sealed ledger");
        self.text.push_str(&format!("[quantum {quantum}]\n"));
        for (key, value) in fields {
            assert!(
                !key.is_empty() && *key != "chain" && !key.contains(['=', '\n']),
                "invalid ledger field key {key:?}"
            );
            assert!(
                !value.contains('\n'),
                "ledger field {key} value has newline"
            );
            self.text.push_str(&format!("{key}={value}\n"));
        }
        let chain = fnv1a(self.text.as_bytes());
        self.text.push_str(&format!("chain={chain:016x}\n"));
        self.records += 1;
    }

    /// Seals the ledger with its record count and whole-file checksum.
    /// Idempotent no-op if already sealed.
    pub fn seal(&mut self) {
        if self.sealed {
            return;
        }
        self.text.push_str("[seal]\n");
        self.text.push_str(&format!("records={}\n", self.records));
        let sum = fnv1a(self.text.as_bytes());
        self.text.push_str(&format!("fnv1a={sum:016x}\n"));
        self.sealed = true;
    }

    /// The ledger text so far.
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Records appended so far.
    #[must_use]
    pub fn records(&self) -> usize {
        self.records
    }

    /// Writes the sealed ledger to a **new** file — an existing file is an
    /// error, because ledgers are immutable audit artifacts, never
    /// overwritten.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::LedgerExists`] naming the offending path when the
    /// file already exists; [`ScenarioError::Io`] for any other
    /// filesystem failure.
    pub fn write_new(&self, path: &Path) -> Result<(), ScenarioError> {
        use std::io::Write;
        let mut f = create_new_ledger_file(path)?;
        f.write_all(self.text.as_bytes())?;
        f.sync_all()?;
        Ok(())
    }

    /// Reconstructs an **unsealed** ledger from previously written text,
    /// so an interrupted producer (the online server after a crash) can
    /// keep appending where it left off.
    ///
    /// The text must be a fully chain-valid, unsealed ledger — i.e.
    /// exactly the [`valid_prefix`] of itself. Callers recovering from a
    /// torn tail should truncate to `valid_prefix(text)` first.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Ledger`] when the text is sealed, has a torn or
    /// tampered tail, or lacks a valid header.
    pub fn resume(text: &str) -> Result<Self, ScenarioError> {
        let prefix = valid_prefix(text);
        if prefix.header_bytes == 0 {
            return Err(ScenarioError::Ledger {
                line: 1,
                reason: "cannot resume: missing or malformed ledger header".into(),
            });
        }
        if prefix.sealed {
            return Err(ScenarioError::Ledger {
                line: text.lines().count(),
                reason: "cannot resume a sealed ledger (the seal is final)".into(),
            });
        }
        if prefix.bytes != text.len() {
            return Err(ScenarioError::Ledger {
                line: text[..prefix.bytes].lines().count() + 1,
                reason: format!(
                    "cannot resume: torn or tampered tail after byte {} \
                     (truncate to the valid prefix first)",
                    prefix.bytes
                ),
            });
        }
        Ok(Self {
            text: text.to_string(),
            records: prefix.records,
            sealed: false,
        })
    }
}

/// Opens `path` with `create_new`, mapping an existing-file collision to
/// the named [`ScenarioError::LedgerExists`]. Shared by every ledger
/// producer (scenario runs, the online server) so the collision is always
/// a typed, actionable error rather than a raw [`ScenarioError::Io`].
pub fn create_new_ledger_file(path: &Path) -> Result<std::fs::File, ScenarioError> {
    std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(path)
        .map_err(|e| {
            if e.kind() == std::io::ErrorKind::AlreadyExists {
                ScenarioError::LedgerExists {
                    path: path.to_path_buf(),
                }
            } else {
                ScenarioError::Io(e)
            }
        })
}

/// The longest cryptographically-consistent prefix of a ledger file: the
/// header/meta section plus every leading record whose `chain=` hash
/// matches the bytes before it, stopping at the first torn, tampered, or
/// malformed line.
///
/// This is the crash-recovery primitive: a producer killed mid-append
/// leaves a torn tail, and because each chain hashes *all* preceding
/// bytes, truncating to `bytes` restores a valid ledger that
/// [`Ledger::resume`] can continue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerPrefix {
    /// Bytes in the valid prefix (a safe truncation point).
    pub bytes: usize,
    /// Whole records inside the valid prefix.
    pub records: usize,
    /// Byte length of the header + meta section (the valid prefix with
    /// zero records). Zero when even the header line is bad.
    pub header_bytes: usize,
    /// Byte offset just past each valid record's `chain=` line —
    /// `record_ends[k]` truncates the ledger to `k + 1` records.
    pub record_ends: Vec<usize>,
    /// Whether the prefix ends in a complete, checksum-valid seal.
    pub sealed: bool,
}

/// Computes the [`LedgerPrefix`] of `text`. Never errors: a hopeless
/// input simply yields a zero-byte prefix.
#[must_use]
pub fn valid_prefix(text: &str) -> LedgerPrefix {
    let mut prefix = LedgerPrefix {
        bytes: 0,
        records: 0,
        header_bytes: 0,
        record_ends: Vec::new(),
        sealed: false,
    };
    let bytes = text.as_bytes();
    let mut offset = 0usize;
    let mut first = true;
    // Are we inside the header/meta section (before the first record)?
    let mut in_meta = true;
    for line in text.split_inclusive('\n') {
        let complete = line.ends_with('\n');
        let content = line.trim_end_matches('\n');
        if first {
            if !(complete && content == HEADER) {
                return prefix;
            }
            first = false;
            offset += line.len();
            prefix.bytes = offset;
            prefix.header_bytes = offset;
            continue;
        }
        if !complete {
            // Torn final line: everything before it already stands.
            return prefix;
        }
        if content == "[seal]" || content.starts_with("records=") {
            // Seal in progress; only a valid fnv1a line below completes it.
            offset += line.len();
            continue;
        }
        if let Some(rest) = content.strip_prefix("fnv1a=") {
            let valid = u64::from_str_radix(rest, 16)
                .map(|want| fnv1a(&bytes[..offset]) == want)
                .unwrap_or(false);
            if valid {
                offset += line.len();
                prefix.bytes = offset;
                prefix.sealed = true;
            }
            return prefix;
        }
        if let Some(rest) = content.strip_prefix("chain=") {
            let valid = u64::from_str_radix(rest, 16)
                .map(|want| fnv1a(&bytes[..offset]) == want)
                .unwrap_or(false);
            if !valid {
                return prefix;
            }
            offset += line.len();
            prefix.bytes = offset;
            prefix.records += 1;
            prefix.record_ends.push(offset);
            continue;
        }
        if content.starts_with("[quantum ") {
            in_meta = false;
        } else if in_meta {
            // Meta lines carry no checksum; they stand with the header.
            offset += line.len();
            prefix.bytes = offset;
            prefix.header_bytes = offset;
            continue;
        }
        // A record body line: provisional until its chain validates.
        offset += line.len();
    }
    prefix
}

/// What [`verify`] found in a well-formed ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerSummary {
    /// Scenario name from the meta section.
    pub scenario: String,
    /// Number of quantum records.
    pub records: usize,
    /// The seal checksum.
    pub fnv1a: u64,
}

/// Verifies a ledger's header, every chain hash, and the seal.
///
/// Any truncation or in-place edit fails at the first record whose chain
/// no longer matches the bytes before it.
///
/// # Errors
///
/// [`ScenarioError::Ledger`] with the 1-based line of the first offence.
pub fn verify(text: &str) -> Result<LedgerSummary, ScenarioError> {
    let bad = |line: usize, reason: String| ScenarioError::Ledger { line, reason };
    let mut scenario = String::new();
    let mut records = 0usize;
    let mut sealed_records: Option<usize> = None;
    let mut seal_sum: Option<u64> = None;
    // Byte offset of the start of the current line.
    let mut offset = 0usize;
    let mut first = true;
    for (idx, line) in text.split_inclusive('\n').enumerate() {
        let lineno = idx + 1;
        let content = line.trim_end_matches('\n');
        if first {
            if content != HEADER {
                return Err(bad(
                    1,
                    format!("bad header '{content}' (expected '{HEADER}')"),
                ));
            }
            first = false;
        } else if let Some(rest) = content.strip_prefix("scenario=") {
            scenario = rest.to_string();
        } else if content.starts_with("[quantum ") {
            records += 1;
        } else if let Some(rest) = content.strip_prefix("chain=") {
            let want = u64::from_str_radix(rest, 16)
                .map_err(|_| bad(lineno, format!("malformed chain hash '{rest}'")))?;
            let got = fnv1a(&text.as_bytes()[..offset]);
            if got != want {
                return Err(bad(
                    lineno,
                    format!(
                        "chain mismatch: record {} hashes to {got:016x}, ledger says \
                         {want:016x} (tampered or truncated upstream)",
                        records.saturating_sub(1)
                    ),
                ));
            }
        } else if let Some(rest) = content.strip_prefix("records=") {
            sealed_records = Some(
                rest.parse()
                    .map_err(|_| bad(lineno, format!("malformed record count '{rest}'")))?,
            );
        } else if let Some(rest) = content.strip_prefix("fnv1a=") {
            let want = u64::from_str_radix(rest, 16)
                .map_err(|_| bad(lineno, format!("malformed seal hash '{rest}'")))?;
            let got = fnv1a(&text.as_bytes()[..offset]);
            if got != want {
                return Err(bad(
                    lineno,
                    format!("seal mismatch: ledger hashes to {got:016x}, seal says {want:016x}"),
                ));
            }
            seal_sum = Some(want);
        }
        offset += line.len();
    }
    let lines = text.lines().count();
    let Some(sum) = seal_sum else {
        return Err(bad(
            lines.max(1),
            "ledger is not sealed (truncated?)".into(),
        ));
    };
    match sealed_records {
        Some(n) if n == records => Ok(LedgerSummary {
            scenario,
            records,
            fnv1a: sum,
        }),
        Some(n) => Err(bad(
            lines.max(1),
            format!("seal claims {n} records, ledger holds {records}"),
        )),
        None => Err(bad(lines.max(1), "seal is missing its record count".into())),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample() -> Ledger {
        let mut ledger = Ledger::new(&LedgerMeta {
            scenario: "test".into(),
            seed: 7,
            mechanism: "rebudget".into(),
            workload: "cpbn".into(),
            cores: 2,
            resources: 2,
            quanta: 2,
            budget: 100.0,
            faults: String::new(),
        });
        for q in 0..2 {
            ledger.append(&LedgerRecord {
                quantum: q,
                phase: "steady",
                events: &[],
                active: &[true, true],
                budgets: &[100.0, 100.0],
                allocation: &[8.0, 40.0, 8.0, 40.0],
                efficiency: 1.5,
                envy_freeness: 1.0,
                degraded: false,
                fallback: false,
                converged: true,
            });
        }
        ledger.seal();
        ledger
    }

    #[test]
    fn verify_accepts_a_sealed_ledger() {
        let ledger = sample();
        let summary = verify(ledger.text()).unwrap();
        assert_eq!(summary.scenario, "test");
        assert_eq!(summary.records, 2);
    }

    #[test]
    fn verify_rejects_tampering_and_truncation() {
        let ledger = sample();
        let text = ledger.text();

        // Flip one hex digit of the first allocation value.
        let tampered = text.replacen("alloc=4020", "alloc=4021", 1);
        assert_ne!(tampered, text);
        match verify(&tampered).unwrap_err() {
            ScenarioError::Ledger { reason, .. } => {
                assert!(reason.contains("chain mismatch"), "{reason}");
            }
            other => panic!("expected Ledger, got {other:?}"),
        }

        // Drop the seal.
        let truncated = &text[..text.rfind("[seal]").unwrap()];
        assert!(matches!(
            verify(truncated).unwrap_err(),
            ScenarioError::Ledger { .. }
        ));

        // Remove a whole record (chain of the next record breaks).
        let second = text.find("[quantum 1]").unwrap();
        let seal = text.find("[seal]").unwrap();
        let gutted = format!("{}{}", &text[..second], &text[seal..]);
        assert!(matches!(
            verify(&gutted).unwrap_err(),
            ScenarioError::Ledger { .. }
        ));

        // Bad header.
        assert!(matches!(
            verify("nonsense\n").unwrap_err(),
            ScenarioError::Ledger { line: 1, .. }
        ));
    }

    #[test]
    fn write_new_collision_is_a_named_error() {
        let dir = std::env::temp_dir().join(format!("rebudget-ledger-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("collision.ledger");
        let ledger = sample();
        ledger.write_new(&path).unwrap();
        // Regression: the second write used to surface a raw io::Error;
        // it must name the colliding path instead.
        match ledger.write_new(&path).unwrap_err() {
            ScenarioError::LedgerExists { path: p } => assert_eq!(p, path),
            other => panic!("expected LedgerExists, got {other}"),
        }
        let msg = ledger.write_new(&path).unwrap_err().to_string();
        assert!(msg.contains("collision.ledger"), "{msg}");
        assert!(msg.contains("immutable"), "{msg}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_section_matches_typed_append_bytes() {
        let meta = LedgerMeta {
            scenario: "raw".into(),
            seed: 1,
            mechanism: "m".into(),
            workload: "w".into(),
            cores: 1,
            resources: 1,
            quanta: 1,
            budget: 1.0,
            faults: String::new(),
        };
        let mut typed = Ledger::new(&meta);
        typed.append(&LedgerRecord {
            quantum: 0,
            phase: "p",
            events: &[],
            active: &[true],
            budgets: &[1.0],
            allocation: &[1.0],
            efficiency: 1.0,
            envy_freeness: 1.0,
            degraded: false,
            fallback: false,
            converged: true,
        });
        let mut raw = Ledger::new(&meta);
        raw.append_section(
            0,
            &[
                ("phase", "p".into()),
                ("active", "1".into()),
                ("budgets", f64_hex(1.0)),
                ("alloc", f64_hex(1.0)),
                ("eff", f64_hex(1.0)),
                ("envy", f64_hex(1.0)),
                ("degraded", "0".into()),
                ("fallback", "0".into()),
                ("converged", "1".into()),
            ],
        );
        assert_eq!(typed.text(), raw.text());
        assert_eq!(typed.records(), raw.records());
    }

    #[test]
    fn valid_prefix_finds_truncation_points() {
        let mut ledger = sample();
        let sealed_text = ledger.text().to_string();
        // Sealed ledger: the whole file is the prefix.
        let p = valid_prefix(&sealed_text);
        assert_eq!(p.bytes, sealed_text.len());
        assert_eq!(p.records, 2);
        assert!(p.sealed);
        assert_eq!(p.record_ends.len(), 2);

        // An unsealed ledger with a torn tail (mid-record kill): the
        // prefix stops at the last complete record.
        ledger = {
            let mut l = Ledger::new(&LedgerMeta {
                scenario: "torn".into(),
                seed: 7,
                mechanism: "rebudget".into(),
                workload: "cpbn".into(),
                cores: 2,
                resources: 2,
                quanta: 2,
                budget: 100.0,
                faults: String::new(),
            });
            for q in 0..2 {
                l.append(&LedgerRecord {
                    quantum: q,
                    phase: "steady",
                    events: &[],
                    active: &[true, true],
                    budgets: &[100.0, 100.0],
                    allocation: &[8.0, 40.0, 8.0, 40.0],
                    efficiency: 1.5,
                    envy_freeness: 1.0,
                    degraded: false,
                    fallback: false,
                    converged: true,
                });
            }
            l
        };
        let clean = ledger.text().to_string();
        let p = valid_prefix(&clean);
        assert_eq!(p.bytes, clean.len());
        assert_eq!(p.records, 2);
        assert!(!p.sealed);
        // Tear the file mid-second-record: prefix = exactly record 1.
        let torn = &clean[..p.record_ends[0] + 17];
        let tp = valid_prefix(torn);
        assert_eq!(tp.bytes, p.record_ends[0]);
        assert_eq!(tp.records, 1);
        // Truncating to any record count reproduces a resumable ledger.
        let resumed = Ledger::resume(&clean[..tp.bytes]).unwrap();
        assert_eq!(resumed.records(), 1);
        // Header + meta only: still resumable with zero records.
        let meta_only = &clean[..p.header_bytes];
        let mp = valid_prefix(meta_only);
        assert_eq!(mp.bytes, meta_only.len());
        assert_eq!(mp.records, 0);
        assert_eq!(Ledger::resume(meta_only).unwrap().records(), 0);
        // Garbage: zero-byte prefix.
        assert_eq!(valid_prefix("nonsense\n").bytes, 0);
        assert_eq!(valid_prefix("").bytes, 0);
    }

    #[test]
    fn resume_continues_the_chain_byte_identically() {
        // Reference: three records appended in one sitting.
        let meta = LedgerMeta {
            scenario: "resume".into(),
            seed: 7,
            mechanism: "rebudget".into(),
            workload: "cpbn".into(),
            cores: 2,
            resources: 2,
            quanta: 3,
            budget: 100.0,
            faults: String::new(),
        };
        let record = |q: usize| LedgerRecord {
            quantum: q,
            phase: "steady",
            events: &[],
            active: &[true, true],
            budgets: &[100.0, 100.0],
            allocation: &[8.0, 40.0, 8.0, 40.0],
            efficiency: 1.5,
            envy_freeness: 1.0,
            degraded: false,
            fallback: false,
            converged: true,
        };
        let mut reference = Ledger::new(&meta);
        for q in 0..3 {
            reference.append(&record(q));
        }
        reference.seal();
        // Interrupted: two records, "crash", resume, third record, seal.
        let mut before = Ledger::new(&meta);
        before.append(&record(0));
        before.append(&record(1));
        let mut after = Ledger::resume(before.text()).unwrap();
        after.append(&record(2));
        after.seal();
        assert_eq!(reference.text(), after.text());
        verify(after.text()).unwrap();
    }

    #[test]
    fn resume_rejects_sealed_and_torn_ledgers() {
        let sealed = sample();
        assert!(matches!(
            Ledger::resume(sealed.text()).unwrap_err(),
            ScenarioError::Ledger { .. }
        ));
        let unsealed = {
            let mut l = Ledger::new(&LedgerMeta {
                scenario: "t".into(),
                seed: 1,
                mechanism: "m".into(),
                workload: "w".into(),
                cores: 1,
                resources: 1,
                quanta: 1,
                budget: 1.0,
                faults: String::new(),
            });
            l.append(&LedgerRecord {
                quantum: 0,
                phase: "p",
                events: &[],
                active: &[true],
                budgets: &[1.0],
                allocation: &[1.0],
                efficiency: 1.0,
                envy_freeness: 1.0,
                degraded: false,
                fallback: false,
                converged: true,
            });
            l
        };
        // Torn tail: drop the last 3 bytes.
        let torn = &unsealed.text()[..unsealed.text().len() - 3];
        assert!(matches!(
            Ledger::resume(torn).unwrap_err(),
            ScenarioError::Ledger { .. }
        ));
        assert!(matches!(
            Ledger::resume("junk\n").unwrap_err(),
            ScenarioError::Ledger { line: 1, .. }
        ));
    }

    #[test]
    fn floats_are_bit_exact_and_event_lines_optional() {
        let mut ledger = Ledger::new(&LedgerMeta {
            scenario: "t".into(),
            seed: 1,
            mechanism: "balanced".into(),
            workload: "ccpp".into(),
            cores: 2,
            resources: 2,
            quanta: 1,
            budget: 0.1 + 0.2, // not representable exactly in decimal
            faults: "noise=0.1,seed=3".into(),
        });
        let events = vec!["onset".to_string(), "shock".to_string()];
        ledger.append(&LedgerRecord {
            quantum: 0,
            phase: "p",
            events: &events,
            active: &[true, false],
            budgets: &[100.0],
            allocation: &[16.0, 80.0, 0.0, 0.0],
            efficiency: std::f64::consts::PI,
            envy_freeness: f64::INFINITY,
            degraded: true,
            fallback: false,
            converged: false,
        });
        ledger.seal();
        let text = ledger.text();
        assert!(text.contains(&format!("budget={}", f64_hex(0.1 + 0.2))));
        assert!(text.contains("events=onset;shock"));
        assert!(text.contains("active=10"));
        assert!(text.contains(&format!("envy={}", f64_hex(f64::INFINITY))));
        verify(text).unwrap();
    }
}
