//! The append-only, hash-chained allocation ledger.
//!
//! Every scenario run produces a ledger: one record per quantum holding
//! the enforced allocation, the effective budgets, the fired events, and
//! the health flags, followed by a seal. The format reuses the checkpoint
//! crate's conventions — `[section]` / `key=value` lines, f64 values as
//! 16-hex-digit IEEE-754 bit patterns (bit-exact round trips), FNV-1a
//! checksums — plus a **chain**: each record ends with the FNV-1a hash of
//! every byte of the ledger before it, so truncation or in-place edits
//! are detected at the first tampered record, not just at the seal.
//!
//! Because the whole pipeline is deterministic, re-running a scenario
//! reproduces its ledger byte for byte — the `ledger-replay` property —
//! which makes the ledger an audit artifact: any holder can re-derive it
//! from the scenario file and diff.

use std::path::Path;

use rebudget_sim::checkpoint::fnv1a;

use crate::ScenarioError;

const HEADER: &str = "rebudget-ledger v1";

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn hex_list(values: &[f64]) -> String {
    values
        .iter()
        .map(|&v| f64_hex(v))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Metadata stamped into the ledger header.
#[derive(Debug, Clone)]
pub struct LedgerMeta {
    /// Scenario name.
    pub scenario: String,
    /// Simulation seed.
    pub seed: u64,
    /// Mechanism name (as declared in the scenario).
    pub mechanism: String,
    /// Workload name.
    pub workload: String,
    /// Core count.
    pub cores: usize,
    /// Resource count.
    pub resources: usize,
    /// Total quanta the scenario runs.
    pub quanta: usize,
    /// Per-player budget.
    pub budget: f64,
    /// Base fault spec in `--faults` grammar (empty when none).
    pub faults: String,
}

/// One quantum's ledger entry.
#[derive(Debug, Clone)]
pub struct LedgerRecord<'a> {
    /// Quantum index.
    pub quantum: usize,
    /// Phase the quantum ran in.
    pub phase: &'a str,
    /// Events that fired this quantum, in declaration order.
    pub events: &'a [String],
    /// Player presence this quantum.
    pub active: &'a [bool],
    /// Effective budgets of the active players.
    pub budgets: &'a [f64],
    /// Row-major full allocation (zero rows for inactive players).
    pub allocation: &'a [f64],
    /// Instantaneous weighted speedup.
    pub efficiency: f64,
    /// Envy-freeness of the quantum's allocation.
    pub envy_freeness: f64,
    /// Whether the solve degraded.
    pub degraded: bool,
    /// Whether the quantum fell back to EqualShare.
    pub fallback: bool,
    /// Whether the solve converged.
    pub converged: bool,
}

/// An in-progress or sealed ledger.
#[derive(Debug, Clone)]
pub struct Ledger {
    text: String,
    records: usize,
    sealed: bool,
}

impl Ledger {
    /// Starts a ledger with its header and meta section.
    #[must_use]
    pub fn new(meta: &LedgerMeta) -> Self {
        let mut text = String::new();
        text.push_str(HEADER);
        text.push('\n');
        text.push_str("[meta]\n");
        text.push_str(&format!("scenario={}\n", meta.scenario));
        text.push_str(&format!("seed={}\n", meta.seed));
        text.push_str(&format!("mechanism={}\n", meta.mechanism));
        text.push_str(&format!("workload={}\n", meta.workload));
        text.push_str(&format!("cores={}\n", meta.cores));
        text.push_str(&format!("resources={}\n", meta.resources));
        text.push_str(&format!("quanta={}\n", meta.quanta));
        text.push_str(&format!("budget={}\n", f64_hex(meta.budget)));
        if !meta.faults.is_empty() {
            text.push_str(&format!("faults={}\n", meta.faults));
        }
        Self {
            text,
            records: 0,
            sealed: false,
        }
    }

    /// Appends one quantum record, closing it with the chain hash of all
    /// preceding bytes.
    ///
    /// # Panics
    ///
    /// Panics if the ledger is already sealed — records are append-only
    /// and the seal is final.
    pub fn append(&mut self, record: &LedgerRecord) {
        assert!(!self.sealed, "cannot append to a sealed ledger");
        self.text
            .push_str(&format!("[quantum {}]\n", record.quantum));
        self.text.push_str(&format!("phase={}\n", record.phase));
        if !record.events.is_empty() {
            self.text
                .push_str(&format!("events={}\n", record.events.join(";")));
        }
        let mask: String = record
            .active
            .iter()
            .map(|&a| if a { '1' } else { '0' })
            .collect();
        self.text.push_str(&format!("active={mask}\n"));
        self.text
            .push_str(&format!("budgets={}\n", hex_list(record.budgets)));
        self.text
            .push_str(&format!("alloc={}\n", hex_list(record.allocation)));
        self.text
            .push_str(&format!("eff={}\n", f64_hex(record.efficiency)));
        self.text
            .push_str(&format!("envy={}\n", f64_hex(record.envy_freeness)));
        self.text
            .push_str(&format!("degraded={}\n", u8::from(record.degraded)));
        self.text
            .push_str(&format!("fallback={}\n", u8::from(record.fallback)));
        self.text
            .push_str(&format!("converged={}\n", u8::from(record.converged)));
        let chain = fnv1a(self.text.as_bytes());
        self.text.push_str(&format!("chain={chain:016x}\n"));
        self.records += 1;
    }

    /// Seals the ledger with its record count and whole-file checksum.
    /// Idempotent no-op if already sealed.
    pub fn seal(&mut self) {
        if self.sealed {
            return;
        }
        self.text.push_str("[seal]\n");
        self.text.push_str(&format!("records={}\n", self.records));
        let sum = fnv1a(self.text.as_bytes());
        self.text.push_str(&format!("fnv1a={sum:016x}\n"));
        self.sealed = true;
    }

    /// The ledger text so far.
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Records appended so far.
    #[must_use]
    pub fn records(&self) -> usize {
        self.records
    }

    /// Writes the sealed ledger to a **new** file — an existing file is an
    /// error, because ledgers are immutable audit artifacts, never
    /// overwritten.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Io`] if the file exists or cannot be written.
    pub fn write_new(&self, path: &Path) -> Result<(), ScenarioError> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)?;
        f.write_all(self.text.as_bytes())?;
        f.sync_all()?;
        Ok(())
    }
}

/// What [`verify`] found in a well-formed ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerSummary {
    /// Scenario name from the meta section.
    pub scenario: String,
    /// Number of quantum records.
    pub records: usize,
    /// The seal checksum.
    pub fnv1a: u64,
}

/// Verifies a ledger's header, every chain hash, and the seal.
///
/// Any truncation or in-place edit fails at the first record whose chain
/// no longer matches the bytes before it.
///
/// # Errors
///
/// [`ScenarioError::Ledger`] with the 1-based line of the first offence.
pub fn verify(text: &str) -> Result<LedgerSummary, ScenarioError> {
    let bad = |line: usize, reason: String| ScenarioError::Ledger { line, reason };
    let mut scenario = String::new();
    let mut records = 0usize;
    let mut sealed_records: Option<usize> = None;
    let mut seal_sum: Option<u64> = None;
    // Byte offset of the start of the current line.
    let mut offset = 0usize;
    let mut first = true;
    for (idx, line) in text.split_inclusive('\n').enumerate() {
        let lineno = idx + 1;
        let content = line.trim_end_matches('\n');
        if first {
            if content != HEADER {
                return Err(bad(
                    1,
                    format!("bad header '{content}' (expected '{HEADER}')"),
                ));
            }
            first = false;
        } else if let Some(rest) = content.strip_prefix("scenario=") {
            scenario = rest.to_string();
        } else if content.starts_with("[quantum ") {
            records += 1;
        } else if let Some(rest) = content.strip_prefix("chain=") {
            let want = u64::from_str_radix(rest, 16)
                .map_err(|_| bad(lineno, format!("malformed chain hash '{rest}'")))?;
            let got = fnv1a(&text.as_bytes()[..offset]);
            if got != want {
                return Err(bad(
                    lineno,
                    format!(
                        "chain mismatch: record {} hashes to {got:016x}, ledger says \
                         {want:016x} (tampered or truncated upstream)",
                        records.saturating_sub(1)
                    ),
                ));
            }
        } else if let Some(rest) = content.strip_prefix("records=") {
            sealed_records = Some(
                rest.parse()
                    .map_err(|_| bad(lineno, format!("malformed record count '{rest}'")))?,
            );
        } else if let Some(rest) = content.strip_prefix("fnv1a=") {
            let want = u64::from_str_radix(rest, 16)
                .map_err(|_| bad(lineno, format!("malformed seal hash '{rest}'")))?;
            let got = fnv1a(&text.as_bytes()[..offset]);
            if got != want {
                return Err(bad(
                    lineno,
                    format!("seal mismatch: ledger hashes to {got:016x}, seal says {want:016x}"),
                ));
            }
            seal_sum = Some(want);
        }
        offset += line.len();
    }
    let lines = text.lines().count();
    let Some(sum) = seal_sum else {
        return Err(bad(
            lines.max(1),
            "ledger is not sealed (truncated?)".into(),
        ));
    };
    match sealed_records {
        Some(n) if n == records => Ok(LedgerSummary {
            scenario,
            records,
            fnv1a: sum,
        }),
        Some(n) => Err(bad(
            lines.max(1),
            format!("seal claims {n} records, ledger holds {records}"),
        )),
        None => Err(bad(lines.max(1), "seal is missing its record count".into())),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample() -> Ledger {
        let mut ledger = Ledger::new(&LedgerMeta {
            scenario: "test".into(),
            seed: 7,
            mechanism: "rebudget".into(),
            workload: "cpbn".into(),
            cores: 2,
            resources: 2,
            quanta: 2,
            budget: 100.0,
            faults: String::new(),
        });
        for q in 0..2 {
            ledger.append(&LedgerRecord {
                quantum: q,
                phase: "steady",
                events: &[],
                active: &[true, true],
                budgets: &[100.0, 100.0],
                allocation: &[8.0, 40.0, 8.0, 40.0],
                efficiency: 1.5,
                envy_freeness: 1.0,
                degraded: false,
                fallback: false,
                converged: true,
            });
        }
        ledger.seal();
        ledger
    }

    #[test]
    fn verify_accepts_a_sealed_ledger() {
        let ledger = sample();
        let summary = verify(ledger.text()).unwrap();
        assert_eq!(summary.scenario, "test");
        assert_eq!(summary.records, 2);
    }

    #[test]
    fn verify_rejects_tampering_and_truncation() {
        let ledger = sample();
        let text = ledger.text();

        // Flip one hex digit of the first allocation value.
        let tampered = text.replacen("alloc=4020", "alloc=4021", 1);
        assert_ne!(tampered, text);
        match verify(&tampered).unwrap_err() {
            ScenarioError::Ledger { reason, .. } => {
                assert!(reason.contains("chain mismatch"), "{reason}");
            }
            other => panic!("expected Ledger, got {other:?}"),
        }

        // Drop the seal.
        let truncated = &text[..text.rfind("[seal]").unwrap()];
        assert!(matches!(
            verify(truncated).unwrap_err(),
            ScenarioError::Ledger { .. }
        ));

        // Remove a whole record (chain of the next record breaks).
        let second = text.find("[quantum 1]").unwrap();
        let seal = text.find("[seal]").unwrap();
        let gutted = format!("{}{}", &text[..second], &text[seal..]);
        assert!(matches!(
            verify(&gutted).unwrap_err(),
            ScenarioError::Ledger { .. }
        ));

        // Bad header.
        assert!(matches!(
            verify("nonsense\n").unwrap_err(),
            ScenarioError::Ledger { line: 1, .. }
        ));
    }

    #[test]
    fn floats_are_bit_exact_and_event_lines_optional() {
        let mut ledger = Ledger::new(&LedgerMeta {
            scenario: "t".into(),
            seed: 1,
            mechanism: "balanced".into(),
            workload: "ccpp".into(),
            cores: 2,
            resources: 2,
            quanta: 1,
            budget: 0.1 + 0.2, // not representable exactly in decimal
            faults: "noise=0.1,seed=3".into(),
        });
        let events = vec!["onset".to_string(), "shock".to_string()];
        ledger.append(&LedgerRecord {
            quantum: 0,
            phase: "p",
            events: &events,
            active: &[true, false],
            budgets: &[100.0],
            allocation: &[16.0, 80.0, 0.0, 0.0],
            efficiency: std::f64::consts::PI,
            envy_freeness: f64::INFINITY,
            degraded: true,
            fallback: false,
            converged: false,
        });
        ledger.seal();
        let text = ledger.text();
        assert!(text.contains(&format!("budget={}", f64_hex(0.1 + 0.2))));
        assert!(text.contains("events=onset;shock"));
        assert!(text.contains("active=10"));
        assert!(text.contains(&format!("envy={}", f64_hex(f64::INFINITY))));
        verify(text).unwrap();
    }
}
