//! A hand-rolled TOML-subset parser — zero dependencies, line-numbered
//! errors, and hard rejection of anything outside the subset.
//!
//! Supported: `[table]` and `[[array-of-tables]]` headers, bare and
//! quoted keys, basic strings with `\\ \" \n \t` escapes, integers (with
//! `_` separators), floats, booleans, single-line arrays, and (nestable)
//! inline tables. Comments start with `#` outside strings. **Not**
//! supported, by design: dotted keys/headers, multi-line strings or
//! arrays, dates, and the literals `inf`/`nan` (a scenario with a
//! non-finite number in it is a typo, not a workload).
//!
//! Every key and value carries the 1-based line it came from, so the
//! model layer can report `scenario.toml:12: unknown key 'quata'` in the
//! style of the checkpoint crate's `CheckpointError::Format`.

use crate::ScenarioError;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal (always finite; `inf`/`nan` are rejected).
    Float(f64),
    /// A boolean literal.
    Bool(bool),
    /// A single-line array.
    Array(Vec<Spanned>),
    /// An inline table, or a table built from headers.
    Table(Table),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }
}

/// A value plus the 1-based line it was parsed from.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The value itself.
    pub value: Value,
    /// 1-based source line.
    pub line: usize,
}

/// An ordered table of `key = value` entries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    entries: Vec<(String, Spanned)>,
    /// Line of the header (or the inline table) this table came from.
    pub line: usize,
}

impl Table {
    /// The entries in declaration order.
    pub fn entries(&self) -> &[(String, Spanned)] {
        &self.entries
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Spanned> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn insert(&mut self, key: String, value: Spanned) -> Result<(), ScenarioError> {
        if self.entries.iter().any(|(k, _)| *k == key) {
            return Err(ScenarioError::Format {
                line: value.line,
                reason: format!("duplicate key '{key}'"),
            });
        }
        self.entries.push((key, value));
        Ok(())
    }
}

/// A [`Table`] wrapper that tracks which keys the model layer consumed,
/// so [`TableReader::finish`] can reject the leftovers by name and line —
/// unknown keys are hard errors, never silently ignored.
pub struct TableReader<'a> {
    table: &'a Table,
    taken: Vec<bool>,
    /// Context string for error messages, e.g. `"[scenario]"`.
    context: String,
}

impl<'a> TableReader<'a> {
    /// Starts reading `table`; `context` names it in error messages.
    pub fn new(table: &'a Table, context: &str) -> Self {
        Self {
            table,
            taken: vec![false; table.entries.len()],
            context: context.to_string(),
        }
    }

    /// The line the table started on.
    pub fn line(&self) -> usize {
        self.table.line
    }

    /// Takes `key` if present, marking it consumed.
    pub fn take(&mut self, key: &str) -> Option<&'a Spanned> {
        for (i, (k, v)) in self.table.entries.iter().enumerate() {
            if k == key {
                self.taken[i] = true;
                return Some(v);
            }
        }
        None
    }

    /// Takes `key`, erroring (at the table's line) if it is missing.
    pub fn require(&mut self, key: &str) -> Result<&'a Spanned, ScenarioError> {
        let line = self.table.line;
        let context = self.context.clone();
        self.take(key).ok_or_else(|| ScenarioError::Format {
            line,
            reason: format!("{context} is missing required key '{key}'"),
        })
    }

    /// Errors on the first unconsumed key, naming it and its line.
    pub fn finish(self) -> Result<(), ScenarioError> {
        for (i, (k, v)) in self.table.entries.iter().enumerate() {
            if !self.taken[i] {
                return Err(ScenarioError::Format {
                    line: v.line,
                    reason: format!("unknown key '{k}' in {}", self.context),
                });
            }
        }
        Ok(())
    }
}

/// Typed accessors with line-numbered type errors.
impl Spanned {
    /// The value as a string.
    pub fn as_str(&self) -> Result<&str, ScenarioError> {
        match &self.value {
            Value::Str(s) => Ok(s),
            other => Err(self.type_err("string", other)),
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Result<f64, ScenarioError> {
        match &self.value {
            Value::Float(x) => Ok(*x),
            #[allow(clippy::cast_precision_loss)]
            Value::Int(n) => Ok(*n as f64),
            other => Err(self.type_err("number", other)),
        }
    }

    /// The value as a non-negative integer.
    pub fn as_usize(&self) -> Result<usize, ScenarioError> {
        match &self.value {
            Value::Int(n) if *n >= 0 => Ok(usize::try_from(*n).unwrap_or(usize::MAX)),
            Value::Int(_) => Err(ScenarioError::Format {
                line: self.line,
                reason: "expected a non-negative integer".into(),
            }),
            other => Err(self.type_err("integer", other)),
        }
    }

    /// The value as a `u64`.
    pub fn as_u64(&self) -> Result<u64, ScenarioError> {
        match &self.value {
            Value::Int(n) if *n >= 0 => Ok(*n as u64),
            Value::Int(_) => Err(ScenarioError::Format {
                line: self.line,
                reason: "expected a non-negative integer".into(),
            }),
            other => Err(self.type_err("integer", other)),
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Result<bool, ScenarioError> {
        match &self.value {
            Value::Bool(b) => Ok(*b),
            other => Err(self.type_err("boolean", other)),
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Result<&[Spanned], ScenarioError> {
        match &self.value {
            Value::Array(items) => Ok(items),
            other => Err(self.type_err("array", other)),
        }
    }

    /// The value as a table.
    pub fn as_table(&self) -> Result<&Table, ScenarioError> {
        match &self.value {
            Value::Table(t) => Ok(t),
            other => Err(self.type_err("table", other)),
        }
    }

    fn type_err(&self, wanted: &str, got: &Value) -> ScenarioError {
        ScenarioError::Format {
            line: self.line,
            reason: format!("expected a {wanted}, got a {}", got.type_name()),
        }
    }
}

/// Parses a TOML-subset document into its root table.
///
/// # Errors
///
/// [`ScenarioError::Format`] with the 1-based line of the first offence.
pub fn parse(text: &str) -> Result<Table, ScenarioError> {
    let mut root = Table {
        line: 1,
        ..Table::default()
    };
    // Path of (key, index-into-array-of-tables) from the root to the
    // table currently receiving `key = value` lines.
    let mut current: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = strip_comment(raw, line)?;
        let trimmed = trimmed.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(inner) = trimmed.strip_prefix("[[") {
            let name = inner
                .strip_suffix("]]")
                .ok_or_else(|| ScenarioError::Format {
                    line,
                    reason: "malformed [[array-of-tables]] header".into(),
                })?;
            let name = header_name(name, line)?;
            push_array_table(&mut root, &name, line)?;
            current = vec![name];
            continue;
        }
        if let Some(inner) = trimmed.strip_prefix('[') {
            let name = inner
                .strip_suffix(']')
                .ok_or_else(|| ScenarioError::Format {
                    line,
                    reason: "malformed [table] header".into(),
                })?;
            let name = header_name(name, line)?;
            if root.get(&name).is_some() {
                return Err(ScenarioError::Format {
                    line,
                    reason: format!("table '{name}' defined twice"),
                });
            }
            root.insert(
                name.clone(),
                Spanned {
                    value: Value::Table(Table {
                        entries: Vec::new(),
                        line,
                    }),
                    line,
                },
            )?;
            current = vec![name];
            continue;
        }
        let (key, rest) = parse_key(trimmed, line)?;
        let mut chars = rest.char_indices().peekable();
        let value = parse_value(rest, &mut chars, line)?;
        if let Some((_, c)) = chars.find(|&(_, c)| !c.is_whitespace()) {
            return Err(ScenarioError::Format {
                line,
                reason: format!("trailing '{c}' after value"),
            });
        }
        let target = resolve(&mut root, &current);
        target.insert(key, Spanned { value, line })?;
    }
    Ok(root)
}

/// Walks to the table currently receiving keys (last element of the last
/// array-of-tables along the path).
fn resolve<'a>(root: &'a mut Table, path: &[String]) -> &'a mut Table {
    let mut t: &mut Table = root;
    for key in path {
        let entry = t
            .entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .expect("path segments are created before being resolved");
        t = match &mut entry.value {
            Value::Table(inner) => inner,
            Value::Array(items) => match &mut items.last_mut().expect("non-empty").value {
                Value::Table(inner) => inner,
                _ => unreachable!("array-of-tables holds tables"),
            },
            _ => unreachable!("path segments are tables"),
        };
    }
    t
}

fn push_array_table(root: &mut Table, name: &str, line: usize) -> Result<(), ScenarioError> {
    let fresh = Spanned {
        value: Value::Table(Table {
            entries: Vec::new(),
            line,
        }),
        line,
    };
    if let Some((_, existing)) = root.entries.iter_mut().find(|(k, _)| k == name) {
        match &mut existing.value {
            Value::Array(items) => {
                items.push(fresh);
                Ok(())
            }
            _ => Err(ScenarioError::Format {
                line,
                reason: format!("'{name}' is not an array of tables"),
            }),
        }
    } else {
        root.insert(
            name.to_string(),
            Spanned {
                value: Value::Array(vec![fresh]),
                line,
            },
        )
    }
}

fn header_name(name: &str, line: usize) -> Result<String, ScenarioError> {
    let name = name.trim();
    if name.is_empty() || !name.chars().all(is_bare_key_char) {
        return Err(ScenarioError::Format {
            line,
            reason: format!(
                "invalid table name '{name}' (dotted and quoted headers are not supported)"
            ),
        });
    }
    Ok(name.to_string())
}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Strips a trailing comment, respecting `#` inside strings.
fn strip_comment(line: &str, lineno: usize) -> Result<&str, ScenarioError> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == '#' {
            return Ok(&line[..i]);
        }
    }
    if in_str {
        return Err(ScenarioError::Format {
            line: lineno,
            reason: "unterminated string".into(),
        });
    }
    Ok(line)
}

/// Splits `key = rest`, supporting bare and quoted keys.
fn parse_key(s: &str, line: usize) -> Result<(String, &str), ScenarioError> {
    let s = s.trim_start();
    let (key, rest) = if let Some(stripped) = s.strip_prefix('"') {
        let end = stripped.find('"').ok_or_else(|| ScenarioError::Format {
            line,
            reason: "unterminated quoted key".into(),
        })?;
        (stripped[..end].to_string(), &stripped[end + 1..])
    } else {
        let end = s.find(|c: char| !is_bare_key_char(c)).unwrap_or(s.len());
        if end == 0 {
            return Err(ScenarioError::Format {
                line,
                reason: format!("expected a key, found '{s}'"),
            });
        }
        (s[..end].to_string(), &s[end..])
    };
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix('=')
        .ok_or_else(|| ScenarioError::Format {
            line,
            reason: format!("expected '=' after key '{key}'"),
        })?;
    Ok((key, rest.trim_start()))
}

type Chars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(chars: &mut Chars) {
    while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
        chars.next();
    }
}

/// Parses one value starting at the iterator's position over `src`.
fn parse_value(src: &str, chars: &mut Chars, line: usize) -> Result<Value, ScenarioError> {
    skip_ws(chars);
    let Some(&(start, c)) = chars.peek() else {
        return Err(ScenarioError::Format {
            line,
            reason: "expected a value".into(),
        });
    };
    match c {
        '"' => parse_string(chars, line),
        '[' => parse_array(src, chars, line),
        '{' => parse_inline_table(src, chars, line),
        _ => {
            // Scalar token: up to a delimiter.
            let mut end = start;
            while let Some(&(i, c)) = chars.peek() {
                if c == ',' || c == ']' || c == '}' || c.is_whitespace() {
                    break;
                }
                end = i + c.len_utf8();
                chars.next();
            }
            parse_scalar(&src[start..end], line)
        }
    }
}

fn parse_scalar(token: &str, line: usize) -> Result<Value, ScenarioError> {
    match token {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        "" => {
            return Err(ScenarioError::Format {
                line,
                reason: "expected a value".into(),
            })
        }
        _ => {}
    }
    let lowered = token.to_ascii_lowercase();
    if lowered.contains("inf") || lowered.contains("nan") {
        return Err(ScenarioError::Format {
            line,
            reason: format!("non-finite numeric literal '{token}'"),
        });
    }
    let cleaned: String = token.chars().filter(|&c| c != '_').collect();
    if !token.contains('.') && !lowered.contains('e') {
        if let Ok(n) = cleaned.parse::<i64>() {
            return Ok(Value::Int(n));
        }
    }
    if let Ok(x) = cleaned.parse::<f64>() {
        if !x.is_finite() {
            return Err(ScenarioError::Format {
                line,
                reason: format!("non-finite numeric literal '{token}'"),
            });
        }
        return Ok(Value::Float(x));
    }
    Err(ScenarioError::Format {
        line,
        reason: format!("unrecognised value '{token}'"),
    })
}

fn parse_string(chars: &mut Chars, line: usize) -> Result<Value, ScenarioError> {
    chars.next(); // opening quote
    let mut out = String::new();
    loop {
        let Some((_, c)) = chars.next() else {
            return Err(ScenarioError::Format {
                line,
                reason: "unterminated string".into(),
            });
        };
        match c {
            '"' => return Ok(Value::Str(out)),
            '\\' => {
                let Some((_, esc)) = chars.next() else {
                    return Err(ScenarioError::Format {
                        line,
                        reason: "unterminated escape".into(),
                    });
                };
                out.push(match esc {
                    '\\' => '\\',
                    '"' => '"',
                    'n' => '\n',
                    't' => '\t',
                    other => {
                        return Err(ScenarioError::Format {
                            line,
                            reason: format!("unsupported escape '\\{other}'"),
                        })
                    }
                });
            }
            _ => out.push(c),
        }
    }
}

fn parse_array(src: &str, chars: &mut Chars, line: usize) -> Result<Value, ScenarioError> {
    chars.next(); // '['
    let mut items = Vec::new();
    loop {
        skip_ws(chars);
        if matches!(chars.peek(), Some((_, ']'))) {
            chars.next();
            return Ok(Value::Array(items));
        }
        let value = parse_value(src, chars, line)?;
        items.push(Spanned { value, line });
        skip_ws(chars);
        match chars.peek() {
            Some((_, ',')) => {
                chars.next();
            }
            Some((_, ']')) => {}
            _ => {
                return Err(ScenarioError::Format {
                    line,
                    reason: "expected ',' or ']' in array".into(),
                })
            }
        }
    }
}

fn parse_inline_table(src: &str, chars: &mut Chars, line: usize) -> Result<Value, ScenarioError> {
    chars.next(); // '{'
    let mut table = Table {
        entries: Vec::new(),
        line,
    };
    loop {
        skip_ws(chars);
        match chars.peek() {
            Some((_, '}')) => {
                chars.next();
                return Ok(Value::Table(table));
            }
            None => {
                return Err(ScenarioError::Format {
                    line,
                    reason: "unterminated inline table".into(),
                })
            }
            _ => {}
        }
        let Some(&(start, _)) = chars.peek() else {
            unreachable!("peeked above")
        };
        let (key, rest_offset) = {
            let rest = &src[start..];
            let (key, after) = parse_key(rest, line)?;
            (key, start + (rest.len() - after.len()))
        };
        // Re-sync the iterator to just past the '=' (parse_key worked on
        // the slice).
        while matches!(chars.peek(), Some(&(i, _)) if i < rest_offset) {
            chars.next();
        }
        let value = parse_value(src, chars, line)?;
        table.insert(key, Spanned { value, line })?;
        skip_ws(chars);
        match chars.peek() {
            Some((_, ',')) => {
                chars.next();
            }
            Some((_, '}')) => {}
            _ => {
                return Err(ScenarioError::Format {
                    line,
                    reason: "expected ',' or '}' in inline table".into(),
                })
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_headers_keys_and_scalars() {
        let doc = parse(
            "# comment\n\
             [scenario]\n\
             name = \"flash-crowd\" # trailing\n\
             seed = 1_000\n\
             budget = 100.5\n\
             deep = true\n\
             [[phases]]\n\
             name = \"warm\"\n\
             quanta = 4\n\
             [[phases]]\n\
             name = \"storm\"\n\
             quanta = 8\n",
        )
        .unwrap();
        let scenario = doc.get("scenario").unwrap().as_table().unwrap();
        assert_eq!(
            scenario.get("name").unwrap().as_str().unwrap(),
            "flash-crowd"
        );
        assert_eq!(scenario.get("seed").unwrap().as_u64().unwrap(), 1000);
        assert!((scenario.get("budget").unwrap().as_f64().unwrap() - 100.5).abs() < 1e-12);
        assert!(scenario.get("deep").unwrap().as_bool().unwrap());
        let phases = doc.get("phases").unwrap().as_array().unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(
            phases[1]
                .as_table()
                .unwrap()
                .get("name")
                .unwrap()
                .as_str()
                .unwrap(),
            "storm"
        );
        assert_eq!(
            phases[1].as_table().unwrap().get("quanta").unwrap().line,
            12
        );
    }

    #[test]
    fn parses_arrays_and_inline_tables() {
        let doc = parse(
            "scales = [1.0, 2.5, 3]\n\
             trigger = { all = [{ at = 3 }, { phase = \"storm\" }], note = \"x\" }\n",
        )
        .unwrap();
        let scales = doc.get("scales").unwrap().as_array().unwrap();
        assert_eq!(scales.len(), 3);
        assert!((scales[2].as_f64().unwrap() - 3.0).abs() < 1e-12);
        let trigger = doc.get("trigger").unwrap().as_table().unwrap();
        let all = trigger.get("all").unwrap().as_array().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(
            all[0]
                .as_table()
                .unwrap()
                .get("at")
                .unwrap()
                .as_usize()
                .unwrap(),
            3
        );
        assert_eq!(
            all[1]
                .as_table()
                .unwrap()
                .get("phase")
                .unwrap()
                .as_str()
                .unwrap(),
            "storm"
        );
        assert_eq!(trigger.get("note").unwrap().as_str().unwrap(), "x");
    }

    #[test]
    fn rejects_non_finite_literals_with_line() {
        for bad in ["x = inf", "x = -inf", "x = nan", "x = 1e999"] {
            let err = parse(&format!("ok = 1\n{bad}\n")).unwrap_err();
            match err {
                ScenarioError::Format { line, reason } => {
                    assert_eq!(line, 2, "{bad}");
                    assert!(reason.contains("non-finite"), "{bad}: {reason}");
                }
                other => panic!("expected Format, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_malformed_documents_with_lines() {
        let cases = [
            ("[scenario\nname = \"x\"\n", 1, "malformed"),
            ("[a]\n[a]\n", 2, "twice"),
            ("a = 1\na = 2\n", 2, "duplicate"),
            ("a = \n", 1, "expected a value"),
            ("a = 1 2\n", 1, "trailing"),
            ("a = \"unterminated\n", 1, "unterminated"),
            ("a = {x = 1\n", 1, "inline table"),
            ("a = [1, \n", 1, "expected a value"),
            ("a = [1, 2\n", 1, "array"),
            ("[a.b]\n", 1, "invalid table name"),
            ("= 3\n", 1, "expected a key"),
            ("a = wat\n", 1, "unrecognised"),
        ];
        for (doc, want_line, want) in cases {
            match parse(doc).unwrap_err() {
                ScenarioError::Format { line, reason } => {
                    assert_eq!(line, want_line, "{doc:?}");
                    assert!(reason.contains(want), "{doc:?}: {reason}");
                }
                other => panic!("expected Format, got {other:?}"),
            }
        }
    }

    #[test]
    fn reader_rejects_unknown_keys() {
        let doc = parse("[s]\ngood = 1\nbogus = 2\n").unwrap();
        let table = doc.get("s").unwrap().as_table().unwrap();
        let mut reader = TableReader::new(table, "[s]");
        assert_eq!(reader.take("good").unwrap().as_usize().unwrap(), 1);
        match reader.finish().unwrap_err() {
            ScenarioError::Format { line, reason } => {
                assert_eq!(line, 3);
                assert!(reason.contains("unknown key 'bogus'"));
            }
            other => panic!("expected Format, got {other:?}"),
        }
    }
}
