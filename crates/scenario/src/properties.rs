//! Declared post-run properties and their verification.
//!
//! A scenario states what must hold after it runs — the paper's fairness
//! floors (Theorems 1 and 2 via [`rebudget_core::theory`]), convergence,
//! absence of NaNs, absolute metric bounds, and the engine-level
//! bit-identity checks (ledger replay, checkpoint resume). Violations
//! are reported by name and exit the CLI with `EXIT_PROPERTY`.

use rebudget_core::theory;
use rebudget_sim::SimResult;

use crate::toml::{Spanned, TableReader};
use crate::ScenarioError;

/// A property a scenario declares about its own run.
#[derive(Debug, Clone, PartialEq)]
pub enum Property {
    /// Theorem 1: final market efficiency is at least
    /// `poa_lower_bound(MUR)` of the max-efficiency oracle's, minus
    /// `tolerance`.
    Theorem1Floor {
        /// Slack subtracted from the theoretical floor.
        tolerance: f64,
    },
    /// Theorem 2: final envy-freeness is at least `ef_lower_bound(MBR)`
    /// minus `tolerance`.
    Theorem2Floor {
        /// Slack subtracted from the theoretical floor.
        tolerance: f64,
    },
    /// Every quantum's solve converged (no degradation, no fallback).
    Converged,
    /// No NaN anywhere in the result metrics or trajectory.
    NoNan,
    /// Re-running the scenario reproduces the allocation ledger byte for
    /// byte.
    LedgerReplay,
    /// Checkpointing mid-run and resuming reproduces the run bit for bit
    /// (requires time-only triggers).
    ResumeIdentity,
    /// Final measured efficiency is at least this.
    MinEfficiency(f64),
    /// Final envy-freeness is at least this.
    MinEnvyFreeness(f64),
    /// At most this many degraded quanta.
    MaxDegraded(usize),
    /// At most this many `EqualShare` fallback quanta.
    MaxFallback(usize),
}

impl Property {
    /// The property's declared name (the `kind` key).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Property::Theorem1Floor { .. } => "theorem1-floor",
            Property::Theorem2Floor { .. } => "theorem2-floor",
            Property::Converged => "converged",
            Property::NoNan => "no-nan",
            Property::LedgerReplay => "ledger-replay",
            Property::ResumeIdentity => "resume-identity",
            Property::MinEfficiency(_) => "min-efficiency",
            Property::MinEnvyFreeness(_) => "min-envy-freeness",
            Property::MaxDegraded(_) => "max-degraded",
            Property::MaxFallback(_) => "max-fallback",
        }
    }

    /// Parses a `[[properties]]` table.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Format`] naming the offending line.
    pub fn from_toml(spanned: &Spanned) -> Result<Self, ScenarioError> {
        let table = spanned.as_table()?;
        let mut reader = TableReader::new(table, "[[properties]]");
        let kind = reader.require("kind")?;
        let kind_name = kind.as_str()?;
        let property = match kind_name {
            "theorem1-floor" | "theorem2-floor" => {
                let tolerance = match reader.take("tolerance") {
                    Some(t) => t.as_f64()?,
                    None => 1e-9,
                };
                if kind_name == "theorem1-floor" {
                    Property::Theorem1Floor { tolerance }
                } else {
                    Property::Theorem2Floor { tolerance }
                }
            }
            "converged" => Property::Converged,
            "no-nan" => Property::NoNan,
            "ledger-replay" => Property::LedgerReplay,
            "resume-identity" => Property::ResumeIdentity,
            "min-efficiency" => Property::MinEfficiency(reader.require("value")?.as_f64()?),
            "min-envy-freeness" => Property::MinEnvyFreeness(reader.require("value")?.as_f64()?),
            "max-degraded" => Property::MaxDegraded(reader.require("value")?.as_usize()?),
            "max-fallback" => Property::MaxFallback(reader.require("value")?.as_usize()?),
            other => {
                return Err(ScenarioError::Format {
                    line: kind.line,
                    reason: format!("unknown property kind '{other}'"),
                })
            }
        };
        reader.finish()?;
        Ok(property)
    }
}

/// The fairness/efficiency audit of the final quantum's market, computed
/// by the engine's hook from the actual utility surfaces (theorem floors
/// cannot be judged from the scalar trajectory alone).
#[derive(Debug, Clone)]
pub struct FinalAudit {
    /// Efficiency of the final allocation in market-utility units.
    pub market_efficiency: f64,
    /// Efficiency of the max-efficiency oracle on the same market, when a
    /// `theorem1-floor` property asked for it.
    pub oracle_efficiency: Option<f64>,
    /// Envy-freeness of the final allocation.
    pub envy_freeness: f64,
    /// Market Utility Range reported by the final quantum's solve, if a
    /// market mechanism ran.
    pub mur: Option<f64>,
    /// Market Budget Range of the final quantum's budgets.
    pub mbr: f64,
}

/// Everything property verification can look at.
pub struct PropertyContext<'a> {
    /// The run's result.
    pub result: &'a SimResult,
    /// Final-market audit (absent only if the run produced no quanta).
    pub audit: Option<&'a FinalAudit>,
    /// Outcome of the ledger-replay check, when the engine ran it.
    pub ledger_replay: Option<&'a Result<(), String>>,
    /// Outcome of the resume-identity check, when the engine ran it.
    pub resume: Option<&'a Result<(), String>>,
}

/// One property's verdict.
#[derive(Debug, Clone)]
pub struct PropertyReport {
    /// The property's `kind` name.
    pub property: String,
    /// Whether it held.
    pub passed: bool,
    /// Human-readable evidence (the numbers compared).
    pub detail: String,
}

impl Property {
    /// Checks the property against a completed run.
    #[must_use]
    pub fn check(&self, ctx: &PropertyContext) -> PropertyReport {
        let (passed, detail) = self.verdict(ctx);
        PropertyReport {
            property: self.name().to_string(),
            passed,
            detail,
        }
    }

    fn verdict(&self, ctx: &PropertyContext) -> (bool, String) {
        let r = ctx.result;
        match self {
            Property::Theorem1Floor { tolerance } => {
                let Some(audit) = ctx.audit else {
                    return (false, "no final market to audit".into());
                };
                let (Some(mur), Some(oracle)) = (audit.mur, audit.oracle_efficiency) else {
                    return (
                        false,
                        "theorem1-floor needs a market mechanism (no MUR/oracle reported)".into(),
                    );
                };
                let floor = theory::poa_lower_bound(mur);
                let ratio = if oracle > 0.0 {
                    audit.market_efficiency / oracle
                } else {
                    1.0
                };
                (
                    ratio >= floor - tolerance,
                    format!(
                        "efficiency ratio {ratio:.6} vs floor {floor:.6} (MUR {mur:.6}, \
                         tolerance {tolerance:e})"
                    ),
                )
            }
            Property::Theorem2Floor { tolerance } => {
                let Some(audit) = ctx.audit else {
                    return (false, "no final market to audit".into());
                };
                let floor = theory::ef_lower_bound(audit.mbr);
                (
                    audit.envy_freeness >= floor - tolerance,
                    format!(
                        "envy-freeness {:.6} vs floor {floor:.6} (MBR {:.6}, tolerance \
                         {tolerance:e})",
                        audit.envy_freeness, audit.mbr
                    ),
                )
            }
            Property::Converged => (
                r.always_converged && r.degraded_quanta == 0 && r.fallback_quanta == 0,
                format!(
                    "always_converged {}, degraded {}, fallback {}",
                    r.always_converged, r.degraded_quanta, r.fallback_quanta
                ),
            ),
            Property::NoNan => {
                let nan = r.efficiency.is_nan()
                    || r.envy_freeness.is_nan()
                    || r.utilities.iter().any(|u| u.is_nan())
                    || r.efficiency_history.iter().any(|e| e.is_nan());
                (
                    !nan,
                    format!("efficiency {:.6}, NaN found: {nan}", r.efficiency),
                )
            }
            Property::LedgerReplay => match ctx.ledger_replay {
                Some(Ok(())) => (true, "replayed ledger is byte-identical".into()),
                Some(Err(why)) => (false, why.clone()),
                None => (false, "ledger replay was not evaluated".into()),
            },
            Property::ResumeIdentity => match ctx.resume {
                Some(Ok(())) => (true, "resumed run is bit-identical".into()),
                Some(Err(why)) => (false, why.clone()),
                None => (false, "resume check was not evaluated".into()),
            },
            Property::MinEfficiency(min) => (
                r.efficiency >= *min,
                format!("efficiency {:.6} vs minimum {min:.6}", r.efficiency),
            ),
            Property::MinEnvyFreeness(min) => (
                r.envy_freeness >= *min,
                format!("envy-freeness {:.6} vs minimum {min:.6}", r.envy_freeness),
            ),
            Property::MaxDegraded(max) => (
                r.degraded_quanta <= *max,
                format!("degraded quanta {} vs maximum {max}", r.degraded_quanta),
            ),
            Property::MaxFallback(max) => (
                r.fallback_quanta <= *max,
                format!("fallback quanta {} vs maximum {max}", r.fallback_quanta),
            ),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::toml::parse;

    fn property(doc: &str) -> Result<Property, ScenarioError> {
        let root = parse(&format!("p = {doc}\n"))?;
        Property::from_toml(root.get("p").unwrap())
    }

    fn result() -> SimResult {
        SimResult {
            mechanism: "ReBudget".into(),
            efficiency: 6.0,
            envy_freeness: 0.9,
            utilities: vec![0.75; 8],
            quanta: 10,
            avg_equilibrium_rounds: 2.0,
            avg_iterations: 40.0,
            always_converged: true,
            efficiency_history: vec![6.0; 10],
            fallback_quanta: 0,
            degraded_quanta: 0,
            solver_recoveries: 0,
            retried_solves: 0,
            timed_out_solves: 0,
            replayed_quanta: 0,
            used_prev_generation: false,
        }
    }

    #[test]
    fn parses_all_kinds_and_rejects_unknowns() {
        assert_eq!(
            property("{ kind = \"theorem2-floor\", tolerance = 1e-6 }").unwrap(),
            Property::Theorem2Floor { tolerance: 1e-6 }
        );
        assert_eq!(
            property("{ kind = \"converged\" }").unwrap(),
            Property::Converged
        );
        assert_eq!(
            property("{ kind = \"min-efficiency\", value = 4.5 }").unwrap(),
            Property::MinEfficiency(4.5)
        );
        assert!(property("{ kind = \"bogus\" }").is_err());
        assert!(
            property("{ kind = \"min-efficiency\" }").is_err(),
            "missing value"
        );
        assert!(
            property("{ kind = \"converged\", value = 1 }").is_err(),
            "stray key"
        );
    }

    #[test]
    fn theorem_floors_use_the_audit() {
        let audit = FinalAudit {
            market_efficiency: 5.5,
            oracle_efficiency: Some(6.0),
            envy_freeness: 0.9,
            mur: Some(0.8),
            mbr: 1.0,
        };
        let r = result();
        let ctx = PropertyContext {
            result: &r,
            audit: Some(&audit),
            ledger_replay: None,
            resume: None,
        };
        let t1 = Property::Theorem1Floor { tolerance: 1e-9 }.check(&ctx);
        // ratio 0.9167 >= 1 - 1/(4·0.8) = 0.6875
        assert!(t1.passed, "{}", t1.detail);
        let t2 = Property::Theorem2Floor { tolerance: 1e-9 }.check(&ctx);
        // floor at MBR=1 is 2·√2 − 2 ≈ 0.828, envy 0.9 clears it
        assert!(t2.passed, "{}", t2.detail);
        let tight = Property::MinEnvyFreeness(0.95).check(&ctx);
        assert!(!tight.passed);
    }

    #[test]
    fn engine_level_checks_report_what_they_saw() {
        let r = result();
        let ok: Result<(), String> = Ok(());
        let bad: Result<(), String> = Err("ledger diverged at line 12".into());
        let ctx = PropertyContext {
            result: &r,
            audit: None,
            ledger_replay: Some(&bad),
            resume: Some(&ok),
        };
        assert!(!Property::LedgerReplay.check(&ctx).passed);
        assert!(Property::ResumeIdentity.check(&ctx).passed);
        assert!(
            !Property::Theorem1Floor { tolerance: 0.0 }
                .check(&ctx)
                .passed
        );
    }
}
