//! The typed scenario model and its validation rules.

use std::path::Path;

use rebudget_market::FaultPlan;
use rebudget_workloads::Category;

use crate::effect::Effect;
use crate::properties::Property;
use crate::toml::{self, Spanned, TableReader};
use crate::trigger::Trigger;
use crate::ScenarioError;

/// Phase lists longer than this are rejected — a scenario is a curated
/// storyline, not a generated schedule.
pub const MAX_PHASES: usize = 32;
/// Total quanta across all phases may not exceed this (a runaway scenario
/// would stall the CI matrix).
pub const MAX_TOTAL_QUANTA: usize = 50_000;

/// One contiguous stretch of quanta.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Phase name, referenced by `{ phase = ... }` triggers.
    pub name: String,
    /// How many quanta the phase lasts (≥ 1).
    pub quanta: usize,
    /// Source line, for error reporting.
    pub line: usize,
}

/// A named trigger → effects rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name, recorded in the ledger when it fires.
    pub name: String,
    /// When the event fires.
    pub trigger: Trigger,
    /// What it does when it fires.
    pub effects: Vec<Effect>,
    /// Fire at most once (the default). `once = false` re-fires on every
    /// quantum the trigger holds.
    pub once: bool,
    /// Source line, for error reporting.
    pub line: usize,
}

/// A fully parsed and validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (used in the ledger header and reports).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Simulation seed.
    pub seed: u64,
    /// Core count (= player count).
    pub cores: usize,
    /// Workload: `"bbpc"` (the paper's 8-core case study) or a category
    /// name (`cpbn`, `ccpp`, `cpbb`, `bbnn`, `bbpn`, `bbcn`).
    pub workload: String,
    /// Mechanism: `equalshare`, `equalbudget`, `balanced`, `rebudget`,
    /// or `maxefficiency`.
    pub mechanism: String,
    /// ReBudget step size (ignored by other mechanisms).
    pub step: Option<f64>,
    /// Per-player budget (default 100).
    pub budget: f64,
    /// Synthetic L2 accesses per core per quantum (default 20 000).
    pub accesses_per_quantum: usize,
    /// Fault plan in force from quantum 0, before any event fires.
    pub base_faults: Option<FaultPlan>,
    /// The phase schedule (at least one phase).
    pub phases: Vec<Phase>,
    /// Trigger → effects rules.
    pub events: Vec<Event>,
    /// Properties verified after the run.
    pub properties: Vec<Property>,
}

impl Scenario {
    /// Total quanta across all phases.
    #[must_use]
    pub fn total_quanta(&self) -> usize {
        self.phases.iter().map(|p| p.quanta).sum()
    }

    /// The phase quantum `q` falls in, and whether `q` is its first
    /// quantum.
    #[must_use]
    pub fn phase_at(&self, q: usize) -> (&Phase, bool) {
        let mut start = 0;
        for phase in &self.phases {
            if q < start + phase.quanta {
                return (phase, q == start);
            }
            start += phase.quanta;
        }
        let last = self.phases.last().expect("validated: at least one phase");
        (last, false)
    }

    /// `true` if every event trigger is a pure function of time/phase —
    /// the precondition for checkpoint-resume identity.
    #[must_use]
    pub fn is_time_only(&self) -> bool {
        self.events.iter().all(|e| e.trigger.is_time_only())
    }

    /// Loads and validates a scenario file.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Io`] if the file cannot be read, otherwise
    /// whatever [`Scenario::parse`] reports.
    pub fn load(path: &Path) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text)
    }

    /// Parses and validates a scenario document.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Format`] with the 1-based line of the first
    /// offence — unknown keys, malformed triggers/effects, out-of-range
    /// references, or an over-long phase list.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let root = toml::parse(text)?;
        let mut reader = TableReader::new(&root, "the scenario document");

        let header = reader.require("scenario")?.as_table()?;
        let mut head = TableReader::new(header, "[scenario]");
        let name = head.require("name")?.as_str()?.to_string();
        let description = match head.take("description") {
            Some(d) => d.as_str()?.to_string(),
            None => String::new(),
        };
        let seed = match head.take("seed") {
            Some(s) => s.as_u64()?,
            None => 1,
        };
        let cores = head.require("cores")?.as_usize()?;
        let workload = head.require("workload")?.as_str()?.to_lowercase();
        let mechanism = head.require("mechanism")?.as_str()?.to_lowercase();
        let step = head.take("step").map(Spanned::as_f64).transpose()?;
        let budget = match head.take("budget") {
            Some(b) => b.as_f64()?,
            None => 100.0,
        };
        let accesses_per_quantum = match head.take("accesses") {
            Some(a) => a.as_usize()?,
            None => 20_000,
        };
        let base_faults = match head.take("faults") {
            Some(f) => {
                let plan = FaultPlan::parse(f.as_str()?).map_err(|e| ScenarioError::Format {
                    line: f.line,
                    reason: format!("bad fault spec: {e}"),
                })?;
                Some(plan).filter(FaultPlan::is_active)
            }
            None => None,
        };
        let header_line = head.line();
        head.finish()?;

        let phases = parse_phases(reader.require("phases")?)?;
        let events = match reader.take("events") {
            Some(v) => parse_events(v)?,
            None => Vec::new(),
        };
        let properties = match reader.take("properties") {
            Some(v) => v
                .as_array()?
                .iter()
                .map(Property::from_toml)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        reader.finish()?;

        let scenario = Scenario {
            name,
            description,
            seed,
            cores,
            workload,
            mechanism,
            step,
            budget,
            accesses_per_quantum,
            base_faults,
            phases,
            events,
            properties,
        };
        scenario.validate(header_line)?;
        Ok(scenario)
    }

    fn validate(&self, header_line: usize) -> Result<(), ScenarioError> {
        let fail = |line: usize, reason: String| Err(ScenarioError::Format { line, reason });

        if self.name.is_empty() {
            return fail(header_line, "scenario name must not be empty".into());
        }
        if self.cores < 2 {
            return fail(
                header_line,
                "a market scenario needs at least 2 cores".into(),
            );
        }
        if self.workload == "bbpc" {
            if self.cores != 8 {
                return fail(
                    header_line,
                    "the paper's bbpc case-study bundle is 8-core".into(),
                );
            }
        } else if Category::from_name(&self.workload).is_none() {
            return fail(header_line, format!("unknown workload '{}'", self.workload));
        }
        const MECHANISMS: [&str; 5] = [
            "equalshare",
            "equalbudget",
            "balanced",
            "rebudget",
            "maxefficiency",
        ];
        if !MECHANISMS.contains(&self.mechanism.as_str()) {
            return fail(
                header_line,
                format!("unknown mechanism '{}'", self.mechanism),
            );
        }
        if !(self.budget.is_finite() && self.budget > 0.0) {
            return fail(header_line, "budget must be finite and positive".into());
        }

        if self.phases.is_empty() {
            return fail(header_line, "a scenario needs at least one phase".into());
        }
        if self.phases.len() > MAX_PHASES {
            return fail(
                self.phases[MAX_PHASES].line,
                format!(
                    "over-long phase list: {} phases (limit {MAX_PHASES})",
                    self.phases.len()
                ),
            );
        }
        for (i, phase) in self.phases.iter().enumerate() {
            if phase.quanta == 0 {
                return fail(
                    phase.line,
                    format!("phase '{}' must last at least one quantum", phase.name),
                );
            }
            if self.phases[..i].iter().any(|p| p.name == phase.name) {
                return fail(
                    phase.line,
                    format!(
                        "cyclic phase list: phase '{}' appears twice (phases are a \
                         one-way schedule)",
                        phase.name
                    ),
                );
            }
        }
        if self.total_quanta() > MAX_TOTAL_QUANTA {
            return fail(
                self.phases.last().expect("non-empty").line,
                format!(
                    "scenario runs {} quanta (limit {MAX_TOTAL_QUANTA})",
                    self.total_quanta()
                ),
            );
        }

        for event in &self.events {
            for referenced in trigger_phases(&event.trigger) {
                if !self.phases.iter().any(|p| p.name == referenced) {
                    return fail(
                        event.line,
                        format!(
                            "event '{}' references unknown phase '{referenced}'",
                            event.name
                        ),
                    );
                }
            }
            for effect in &event.effects {
                if let Some(max) = effect.max_player() {
                    if max >= self.cores {
                        return fail(
                            event.line,
                            format!(
                                "event '{}' references player {max} in a {}-core \
                                 scenario",
                                event.name, self.cores
                            ),
                        );
                    }
                }
                if let Effect::BudgetScales(scales) = effect {
                    if scales.len() != self.cores {
                        return fail(
                            event.line,
                            format!(
                                "budget-scales has {} entries for {} players",
                                scales.len(),
                                self.cores
                            ),
                        );
                    }
                }
            }
        }

        for property in &self.properties {
            if *property == Property::ResumeIdentity && !self.is_time_only() {
                return fail(
                    header_line,
                    "resume-identity requires time-only triggers (metric triggers \
                     cannot replay from a snapshot)"
                        .into(),
                );
            }
            if matches!(property, Property::Theorem1Floor { .. })
                && matches!(self.mechanism.as_str(), "equalshare" | "maxefficiency")
            {
                return fail(
                    header_line,
                    format!(
                        "theorem1-floor needs a market mechanism (got '{}')",
                        self.mechanism
                    ),
                );
            }
        }
        Ok(())
    }
}

fn trigger_phases(trigger: &Trigger) -> Vec<&str> {
    match trigger {
        Trigger::Phase(name) | Trigger::PhaseStart(name) => vec![name.as_str()],
        Trigger::All(subs) | Trigger::Any(subs) => subs.iter().flat_map(trigger_phases).collect(),
        _ => Vec::new(),
    }
}

fn parse_phases(v: &Spanned) -> Result<Vec<Phase>, ScenarioError> {
    v.as_array()?
        .iter()
        .map(|item| {
            let table = item.as_table()?;
            let mut reader = TableReader::new(table, "[[phases]]");
            let line = reader.line();
            let phase = Phase {
                name: reader.require("name")?.as_str()?.to_string(),
                quanta: reader.require("quanta")?.as_usize()?,
                line,
            };
            reader.finish()?;
            Ok(phase)
        })
        .collect()
}

fn parse_events(v: &Spanned) -> Result<Vec<Event>, ScenarioError> {
    v.as_array()?
        .iter()
        .map(|item| {
            let table = item.as_table()?;
            let mut reader = TableReader::new(table, "[[events]]");
            let line = reader.line();
            let name = reader.require("name")?.as_str()?.to_string();
            let trigger = Trigger::from_toml(reader.require("trigger")?)?;
            let effects_value = reader.require("effects")?;
            let effects = effects_value
                .as_array()?
                .iter()
                .map(Effect::from_toml)
                .collect::<Result<Vec<_>, _>>()?;
            if effects.is_empty() {
                return Err(ScenarioError::Format {
                    line: effects_value.line,
                    reason: format!("event '{name}' has no effects"),
                });
            }
            let once = match reader.take("once") {
                Some(o) => o.as_bool()?,
                None => true,
            };
            reader.finish()?;
            Ok(Event {
                name,
                trigger,
                effects,
                once,
                line,
            })
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    const MINIMAL: &str = "\
[scenario]
name = \"quiet\"
cores = 8
workload = \"cpbn\"
mechanism = \"rebudget\"
seed = 7

[[phases]]
name = \"steady\"
quanta = 6
";

    #[test]
    fn parses_a_minimal_scenario_with_defaults() {
        let s = Scenario::parse(MINIMAL).unwrap();
        assert_eq!(s.name, "quiet");
        assert_eq!(s.total_quanta(), 6);
        assert_eq!(s.budget, 100.0);
        assert_eq!(s.accesses_per_quantum, 20_000);
        assert!(s.base_faults.is_none());
        assert!(s.events.is_empty());
        assert!(s.is_time_only());
        assert_eq!(s.phase_at(0), (&s.phases[0], true));
        assert_eq!(s.phase_at(3), (&s.phases[0], false));
    }

    #[test]
    fn parses_events_and_properties() {
        let doc = format!(
            "{MINIMAL}
[[phases]]
name = \"storm\"
quanta = 4

[[events]]
name = \"onset\"
trigger = {{ phase-start = \"storm\" }}
effects = [{{ faults = \"noise=0.2,seed=3\" }}]

[[properties]]
kind = \"no-nan\"
"
        );
        let s = Scenario::parse(&doc).unwrap();
        assert_eq!(s.total_quanta(), 10);
        assert_eq!(s.events.len(), 1);
        assert!(s.events[0].once);
        assert_eq!(s.properties, vec![Property::NoNan]);
        let (phase, start) = s.phase_at(6);
        assert_eq!(phase.name, "storm");
        assert!(start);
    }

    fn expect_line(doc: &str, needle: &str) -> usize {
        match Scenario::parse(doc).unwrap_err() {
            ScenarioError::Format { line, reason } => {
                assert!(reason.contains(needle), "wanted '{needle}' in '{reason}'");
                line
            }
            other => panic!("expected Format, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_keys_with_lines() {
        let doc = MINIMAL.replace("seed = 7", "seed = 7\nquata = 3");
        assert_eq!(expect_line(&doc, "unknown key 'quata'"), 7);
    }

    #[test]
    fn rejects_cyclic_and_over_long_phase_lists() {
        let doc = format!(
            "{MINIMAL}
[[phases]]
name = \"steady\"
quanta = 3
"
        );
        expect_line(&doc, "cyclic phase list");

        let mut long = MINIMAL.to_string();
        for i in 0..MAX_PHASES {
            long.push_str(&format!("\n[[phases]]\nname = \"p{i}\"\nquanta = 1\n"));
        }
        expect_line(&long, "over-long phase list");

        let doc = MINIMAL.replace("quanta = 6", "quanta = 0");
        expect_line(&doc, "at least one quantum");

        let doc = MINIMAL.replace("quanta = 6", &format!("quanta = {}", MAX_TOTAL_QUANTA + 1));
        expect_line(&doc, "limit");
    }

    #[test]
    fn rejects_dangling_references() {
        let doc = format!(
            "{MINIMAL}
[[events]]
name = \"e\"
trigger = {{ phase = \"nope\" }}
effects = [{{ reset = true }}]
"
        );
        expect_line(&doc, "unknown phase 'nope'");

        let doc = format!(
            "{MINIMAL}
[[events]]
name = \"e\"
trigger = {{ at = 0 }}
effects = [{{ depart = 9 }}]
"
        );
        expect_line(&doc, "references player 9");

        let doc = format!(
            "{MINIMAL}
[[events]]
name = \"e\"
trigger = {{ at = 0 }}
effects = [{{ budget-scales = [1.0, 2.0] }}]
"
        );
        expect_line(&doc, "2 entries for 8 players");
    }

    #[test]
    fn rejects_incoherent_property_declarations() {
        let doc = format!(
            "{MINIMAL}
[[events]]
name = \"adaptive\"
trigger = {{ metric = \"residual\", at-least = 0.5 }}
effects = [{{ reset = true }}]

[[properties]]
kind = \"resume-identity\"
"
        );
        expect_line(&doc, "resume-identity requires time-only triggers");

        let doc = MINIMAL.replace("mechanism = \"rebudget\"", "mechanism = \"equalshare\"")
            + "\n[[properties]]\nkind = \"theorem1-floor\"\n";
        expect_line(&doc, "theorem1-floor needs a market mechanism");
    }

    #[test]
    fn rejects_bad_header_values() {
        expect_line(
            &MINIMAL.replace("workload = \"cpbn\"", "workload = \"zzz\""),
            "unknown workload",
        );
        expect_line(
            &MINIMAL.replace("mechanism = \"rebudget\"", "mechanism = \"magic\""),
            "unknown mechanism",
        );
        expect_line(
            &MINIMAL.replace("cores = 8", "cores = 1"),
            "at least 2 cores",
        );
        expect_line(
            &MINIMAL
                .replace("cores = 8", "cores = 4")
                .replace("workload = \"cpbn\"", "workload = \"bbpc\""),
            "8-core",
        );
        expect_line(
            &MINIMAL.replace("seed = 7", "seed = 7\nbudget = -1.0"),
            "budget must be finite and positive",
        );
    }
}
