//! Event triggers: when an effect fires.
//!
//! The shape follows finplan's recursive `evaluate_trigger(trigger,
//! state)`: leaf conditions on time, phase, or observed metrics, plus
//! composable `all`/`any` combinators. Metric triggers read the
//! **previous** quantum's observation — the market for quantum `q` is
//! built before `q` executes, so `q`'s own metrics cannot steer it.

use crate::toml::{Spanned, TableReader};
use crate::ScenarioError;

/// A metric a threshold trigger can watch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Instantaneous weighted speedup of the previous quantum.
    Efficiency,
    /// Envy-freeness of the previous quantum's allocation.
    EnvyFreeness,
    /// Worst solver residual of the previous quantum.
    Residual,
    /// Cumulative degraded quanta so far.
    DegradedQuanta,
    /// Cumulative `EqualShare` fallback quanta so far.
    FallbackQuanta,
}

impl Metric {
    fn from_name(name: &str, line: usize) -> Result<Self, ScenarioError> {
        match name {
            "efficiency" => Ok(Metric::Efficiency),
            "envy-freeness" => Ok(Metric::EnvyFreeness),
            "residual" => Ok(Metric::Residual),
            "degraded-quanta" => Ok(Metric::DegradedQuanta),
            "fallback-quanta" => Ok(Metric::FallbackQuanta),
            other => Err(ScenarioError::Format {
                line,
                reason: format!(
                    "unknown metric '{other}' (expected efficiency, envy-freeness, \
                     residual, degraded-quanta, or fallback-quanta)"
                ),
            }),
        }
    }
}

/// What the trigger evaluator sees each quantum.
#[derive(Debug, Clone, Copy)]
pub struct TriggerState<'a> {
    /// The quantum about to run.
    pub quantum: usize,
    /// Name of the phase the quantum falls in.
    pub phase: &'a str,
    /// `true` only on the first quantum of the current phase.
    pub phase_start: bool,
    /// The previous quantum's metrics, if any quantum has completed.
    pub prev: Option<MetricSnapshot>,
}

/// The metric values a threshold trigger evaluates against.
#[derive(Debug, Clone, Copy)]
pub struct MetricSnapshot {
    /// Instantaneous weighted speedup.
    pub efficiency: f64,
    /// Envy-freeness of the allocation.
    pub envy_freeness: f64,
    /// Worst solver residual.
    pub residual: f64,
    /// Cumulative degraded quanta.
    pub degraded_quanta: usize,
    /// Cumulative fallback quanta.
    pub fallback_quanta: usize,
}

impl MetricSnapshot {
    #[allow(clippy::cast_precision_loss)]
    fn get(&self, metric: Metric) -> f64 {
        match metric {
            Metric::Efficiency => self.efficiency,
            Metric::EnvyFreeness => self.envy_freeness,
            Metric::Residual => self.residual,
            Metric::DegradedQuanta => self.degraded_quanta as f64,
            Metric::FallbackQuanta => self.fallback_quanta as f64,
        }
    }
}

/// When an event fires.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Exactly at quantum `q` (`{ at = q }`).
    At(usize),
    /// At quantum `q` and every quantum after (`{ after = q }`).
    After(usize),
    /// Every `period` quanta from `offset` (`{ every = p, offset = o }`).
    Every {
        /// Firing period in quanta (≥ 1).
        period: usize,
        /// First quantum that can fire.
        offset: usize,
    },
    /// Every quantum of the named phase (`{ phase = "storm" }`). With the
    /// default `once = true` on the event, this means "when the phase
    /// begins".
    Phase(String),
    /// Only on the first quantum of the named phase
    /// (`{ phase-start = "storm" }`).
    PhaseStart(String),
    /// Previous-quantum metric at or above a threshold
    /// (`{ metric = "residual", at-least = 0.05 }`).
    MetricAtLeast(Metric, f64),
    /// Previous-quantum metric at or below a threshold
    /// (`{ metric = "efficiency", at-most = 4.0 }`).
    MetricAtMost(Metric, f64),
    /// All sub-triggers hold (`{ all = [ ... ] }`).
    All(Vec<Trigger>),
    /// Any sub-trigger holds (`{ any = [ ... ] }`).
    Any(Vec<Trigger>),
}

impl Trigger {
    /// Whether the trigger fires for `state`.
    #[must_use]
    pub fn evaluate(&self, state: &TriggerState) -> bool {
        match self {
            Trigger::At(q) => state.quantum == *q,
            Trigger::After(q) => state.quantum >= *q,
            Trigger::Every { period, offset } => {
                state.quantum >= *offset && (state.quantum - offset).is_multiple_of(*period.max(&1))
            }
            Trigger::Phase(name) => state.phase == name,
            Trigger::PhaseStart(name) => state.phase_start && state.phase == name,
            Trigger::MetricAtLeast(metric, threshold) => state
                .prev
                .is_some_and(|snap| snap.get(*metric) >= *threshold),
            Trigger::MetricAtMost(metric, threshold) => state
                .prev
                .is_some_and(|snap| snap.get(*metric) <= *threshold),
            Trigger::All(subs) => subs.iter().all(|t| t.evaluate(state)),
            Trigger::Any(subs) => subs.iter().any(|t| t.evaluate(state)),
        }
    }

    /// `true` if the trigger depends only on the quantum index and phase
    /// schedule — the precondition for `resume-identity` scenarios, where
    /// replayed quanta must re-fire the exact same events without the
    /// metric history that snapshots do not record.
    #[must_use]
    pub fn is_time_only(&self) -> bool {
        match self {
            Trigger::At(_)
            | Trigger::After(_)
            | Trigger::Every { .. }
            | Trigger::Phase(_)
            | Trigger::PhaseStart(_) => true,
            Trigger::MetricAtLeast(..) | Trigger::MetricAtMost(..) => false,
            Trigger::All(subs) | Trigger::Any(subs) => subs.iter().all(Trigger::is_time_only),
        }
    }

    /// Parses a trigger from its inline-table form.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Format`] naming the offending line for unknown
    /// keys, missing thresholds, or malformed combinators.
    pub fn from_toml(spanned: &Spanned) -> Result<Self, ScenarioError> {
        let table = spanned.as_table()?;
        let mut reader = TableReader::new(table, "trigger");
        let line = reader.line();
        let trigger = if let Some(v) = reader.take("at") {
            Trigger::At(v.as_usize()?)
        } else if let Some(v) = reader.take("after") {
            Trigger::After(v.as_usize()?)
        } else if let Some(v) = reader.take("every") {
            let period = v.as_usize()?;
            if period == 0 {
                return Err(ScenarioError::Format {
                    line: v.line,
                    reason: "'every' period must be at least 1".into(),
                });
            }
            let offset = match reader.take("offset") {
                Some(o) => o.as_usize()?,
                None => 0,
            };
            Trigger::Every { period, offset }
        } else if let Some(v) = reader.take("phase") {
            Trigger::Phase(v.as_str()?.to_string())
        } else if let Some(v) = reader.take("phase-start") {
            Trigger::PhaseStart(v.as_str()?.to_string())
        } else if let Some(v) = reader.take("metric") {
            let metric = Metric::from_name(v.as_str()?, v.line)?;
            let at_least = reader.take("at-least").map(Spanned::as_f64).transpose()?;
            let at_most = reader.take("at-most").map(Spanned::as_f64).transpose()?;
            match (at_least, at_most) {
                (Some(x), None) => Trigger::MetricAtLeast(metric, x),
                (None, Some(x)) => Trigger::MetricAtMost(metric, x),
                _ => {
                    return Err(ScenarioError::Format {
                        line,
                        reason: "a metric trigger needs exactly one of 'at-least' or 'at-most'"
                            .into(),
                    })
                }
            }
        } else if let Some(v) = reader.take("all") {
            Trigger::All(parse_list(v)?)
        } else if let Some(v) = reader.take("any") {
            Trigger::Any(parse_list(v)?)
        } else {
            return Err(ScenarioError::Format {
                line,
                reason: "malformed trigger: expected one of at, after, every, phase, \
                         phase-start, metric, all, any"
                    .into(),
            });
        };
        reader.finish()?;
        Ok(trigger)
    }
}

fn parse_list(v: &Spanned) -> Result<Vec<Trigger>, ScenarioError> {
    let items = v.as_array()?;
    if items.is_empty() {
        return Err(ScenarioError::Format {
            line: v.line,
            reason: "trigger combinator needs at least one sub-trigger".into(),
        });
    }
    items.iter().map(Trigger::from_toml).collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::toml::parse;

    fn trigger(doc: &str) -> Result<Trigger, ScenarioError> {
        let root = parse(&format!("t = {doc}\n"))?;
        Trigger::from_toml(root.get("t").unwrap())
    }

    fn state(quantum: usize, phase: &str) -> TriggerState<'_> {
        TriggerState {
            quantum,
            phase,
            phase_start: false,
            prev: None,
        }
    }

    #[test]
    fn time_triggers_fire_on_schedule() {
        let at = trigger("{ at = 3 }").unwrap();
        assert!(at.evaluate(&state(3, "p")));
        assert!(!at.evaluate(&state(4, "p")));
        let after = trigger("{ after = 3 }").unwrap();
        assert!(!after.evaluate(&state(2, "p")));
        assert!(after.evaluate(&state(7, "p")));
        let every = trigger("{ every = 4, offset = 1 }").unwrap();
        assert!(every.evaluate(&state(1, "p")));
        assert!(every.evaluate(&state(5, "p")));
        assert!(!every.evaluate(&state(0, "p")));
        assert!(!every.evaluate(&state(4, "p")));
    }

    #[test]
    fn phase_and_combinators_compose() {
        let t = trigger("{ all = [{ phase = \"storm\" }, { every = 2 }] }").unwrap();
        assert!(t.evaluate(&state(4, "storm")));
        assert!(!t.evaluate(&state(5, "storm")));
        assert!(!t.evaluate(&state(4, "calm")));
        let any = trigger("{ any = [{ at = 1 }, { at = 9 }] }").unwrap();
        assert!(any.evaluate(&state(9, "p")));
        assert!(!any.evaluate(&state(5, "p")));
        assert!(t.is_time_only());
    }

    #[test]
    fn metric_triggers_need_history_and_one_bound() {
        let t = trigger("{ metric = \"residual\", at-least = 0.5 }").unwrap();
        assert!(!t.evaluate(&state(4, "p")), "no history yet");
        let snap = MetricSnapshot {
            efficiency: 5.0,
            envy_freeness: 0.9,
            residual: 0.7,
            degraded_quanta: 2,
            fallback_quanta: 0,
        };
        let s = TriggerState {
            quantum: 4,
            phase: "p",
            phase_start: false,
            prev: Some(snap),
        };
        assert!(t.evaluate(&s));
        assert!(!t.is_time_only());
        let low = trigger("{ metric = \"efficiency\", at-most = 4.0 }").unwrap();
        assert!(!low.evaluate(&s));
        assert!(trigger("{ metric = \"residual\" }").is_err());
        assert!(trigger("{ metric = \"residual\", at-least = 1, at-most = 2 }").is_err());
        assert!(trigger("{ metric = \"bogus\", at-least = 1 }").is_err());
    }

    #[test]
    fn malformed_triggers_are_line_numbered() {
        let root = parse("x = 1\nt = { bogus = 3 }\n").unwrap();
        match Trigger::from_toml(root.get("t").unwrap()).unwrap_err() {
            ScenarioError::Format { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("unknown key") || reason.contains("malformed"));
            }
            other => panic!("expected Format, got {other:?}"),
        }
        assert!(trigger("{ every = 0 }").is_err());
        assert!(trigger("{ all = [] }").is_err());
    }
}
